//! Typed faults and the graceful-degradation ladder.
//!
//! DAISY's headline claim is *100% architectural compatibility*: the
//! VMM must survive anything a guest binary throws at it — illegal
//! opcodes, self-modifying code, cast-out pressure, interrupt storms —
//! while preserving precise exceptions. This module is the vocabulary
//! for that promise: every recoverable fault on the dispatch path steps
//! an entry point down the [`Rung`] ladder (recorded as a
//! [`Degradation`] and emitted as
//! [`crate::trace::TraceEvent::Degraded`]) instead of panicking, and
//! only faults that genuinely cannot be recovered surface as a
//! [`DaisyError`].
//!
//! The ladder, top to bottom:
//!
//! 1. [`Rung::Native`] — hot groups lowered to host machine code (the
//!    top rung when the native tier is enabled and the host supports
//!    it; otherwise entries start at `Packed`).
//! 2. [`Rung::Packed`] — the packed-format engine.
//! 3. [`Rung::Tree`] — the reference tree-walking engine on the same
//!    translation.
//! 4. [`Rung::Conservative`] — the entry is retranslated with load
//!    speculation inhibited.
//! 5. [`Rung::Interpret`] — the entry's whole translation page is
//!    abandoned and executed by the reference interpreter. Groups never
//!    span pages, so page-granular interpretation is always sound.
//!
//! Every rung is observationally identical to the one above it; the
//! fault-injection campaigns in [`crate::inject`] prove it by running
//! each perturbed system to completion and diffing the final
//! architected state against the pure-interpreter oracle bit for bit.

use crate::precise::RecoverError;
use std::fmt;

/// One rung of the graceful-degradation ladder, ordered fastest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Hot groups lowered to host machine code (x86-64 only; entries
    /// on other hosts, or with the native tier disabled, start at
    /// [`Rung::Packed`]).
    Native,
    /// Packed-format engine (the default execution mode).
    Packed,
    /// Reference tree-walking engine over the same translation.
    Tree,
    /// Retranslated with load speculation inhibited (no-spec).
    Conservative,
    /// Pure interpretation of the entry's whole translation page.
    Interpret,
}

impl Rung {
    /// Every rung, top (fastest) to bottom, in [`Rung::index`] order.
    pub const ALL: [Rung; 5] =
        [Rung::Native, Rung::Packed, Rung::Tree, Rung::Conservative, Rung::Interpret];

    /// Stable position in [`Rung::ALL`] (0 = [`Rung::Native`]), used by
    /// [`crate::metrics`] for per-rung occupancy arrays.
    pub fn index(self) -> usize {
        match self {
            Rung::Native => 0,
            Rung::Packed => 1,
            Rung::Tree => 2,
            Rung::Conservative => 3,
            Rung::Interpret => 4,
        }
    }

    /// Short lowercase name, for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Rung::Native => "native",
            Rung::Packed => "packed",
            Rung::Tree => "tree",
            Rung::Conservative => "conservative",
            Rung::Interpret => "interpret",
        }
    }

    /// The next rung down, or `None` at the bottom ([`Rung::Interpret`]
    /// is the floor: the reference interpreter *defines* architected
    /// behaviour, so there is nothing left to fall back to).
    pub fn next_down(self) -> Option<Rung> {
        match self {
            Rung::Native => Some(Rung::Packed),
            Rung::Packed => Some(Rung::Tree),
            Rung::Tree => Some(Rung::Conservative),
            Rung::Conservative => Some(Rung::Interpret),
            Rung::Interpret => None,
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an entry point stepped down the ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DegradeCause {
    /// The §3.5 recovery cross-check disagreed with the engine's
    /// metadata; the group is rerun one rung down rather than trusted.
    RecoveryMismatch,
    /// An illegal or reserved opcode was found in the group's page.
    IllegalOp,
    /// The group's code was rewritten while hot (self-modifying code
    /// beyond what invalidation alone should absorb).
    CodeRewrite,
    /// Translation-cache cast-out pressure (thrash).
    CastOutPressure,
    /// Interrupts arriving at every group boundary.
    InterruptStorm,
    /// Chain links repeatedly severed under the group.
    ChainUnstable,
    /// The entry's translation unit was dropped out from under it.
    TranslationDropped,
    /// The interpret-ahead hint budget was exhausted mid-group: the
    /// translation is still sound but was built from truncated hints
    /// (`from == to` — a quality degradation within the same rung).
    HintBudget,
    /// Externally requested (the fault injector's ladder driver).
    Forced,
}

impl DegradeCause {
    /// Every cause, in [`DegradeCause::index`] order.
    pub const ALL: [DegradeCause; 9] = [
        DegradeCause::RecoveryMismatch,
        DegradeCause::IllegalOp,
        DegradeCause::CodeRewrite,
        DegradeCause::CastOutPressure,
        DegradeCause::InterruptStorm,
        DegradeCause::ChainUnstable,
        DegradeCause::TranslationDropped,
        DegradeCause::HintBudget,
        DegradeCause::Forced,
    ];

    /// Stable position in [`DegradeCause::ALL`], used by
    /// [`crate::metrics`] for per-cause counter arrays.
    pub fn index(self) -> usize {
        match self {
            DegradeCause::RecoveryMismatch => 0,
            DegradeCause::IllegalOp => 1,
            DegradeCause::CodeRewrite => 2,
            DegradeCause::CastOutPressure => 3,
            DegradeCause::InterruptStorm => 4,
            DegradeCause::ChainUnstable => 5,
            DegradeCause::TranslationDropped => 6,
            DegradeCause::HintBudget => 7,
            DegradeCause::Forced => 8,
        }
    }

    /// Short lowercase name, for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            DegradeCause::RecoveryMismatch => "recovery_mismatch",
            DegradeCause::IllegalOp => "illegal_op",
            DegradeCause::CodeRewrite => "code_rewrite",
            DegradeCause::CastOutPressure => "cast_out_pressure",
            DegradeCause::InterruptStorm => "interrupt_storm",
            DegradeCause::ChainUnstable => "chain_unstable",
            DegradeCause::TranslationDropped => "translation_dropped",
            DegradeCause::HintBudget => "hint_budget",
            DegradeCause::Forced => "forced",
        }
    }
}

impl fmt::Display for DegradeCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded step down the ladder (or, for
/// [`DegradeCause::HintBudget`], a quality degradation within a rung,
/// where `from == to`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Degradation {
    /// Entry point that degraded.
    pub entry: u32,
    /// Rung before the step.
    pub from: Rung,
    /// Rung after the step.
    pub to: Rung,
    /// Why.
    pub cause: DegradeCause,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "entry {:#x}: {} -> {} ({})", self.entry, self.from, self.to, self.cause)
    }
}

/// An unrecoverable fault: the ladder was exhausted or stepping down
/// would be unsound. [`crate::system::DaisySystem::run`] returns this
/// instead of panicking; in a correct build it indicates a
/// translator-invariant violation, never a guest-input condition.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DaisyError {
    /// The §3.5 recovery cross-check failed and the faulting group
    /// could not be retried one rung down: either stores had already
    /// committed before the fault (rerunning would double-apply them)
    /// or the entry was already at the bottom rung.
    Recovery {
        /// Entry point of the faulting group.
        entry: u32,
        /// The underlying recovery disagreement.
        source: RecoverError,
    },
}

impl fmt::Display for DaisyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaisyError::Recovery { entry, source } => {
                write!(f, "unrecoverable at entry {entry:#x}: {source}")
            }
        }
    }
}

impl std::error::Error for DaisyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaisyError::Recovery { source, .. } => Some(source),
        }
    }
}

impl From<RecoverError> for DaisyError {
    fn from(source: RecoverError) -> DaisyError {
        DaisyError::Recovery { entry: 0, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_finite_and_ordered() {
        let mut rung = Rung::Native;
        let mut steps = 0;
        while let Some(next) = rung.next_down() {
            assert!(next > rung, "ladder must strictly descend");
            rung = next;
            steps += 1;
        }
        assert_eq!(rung, Rung::Interpret);
        assert_eq!(steps, 4);
    }

    #[test]
    fn index_tables_match_all_order() {
        for (i, r) in Rung::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        for (i, c) in DegradeCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn display_is_stable() {
        let d = Degradation {
            entry: 0x1000,
            from: Rung::Packed,
            to: Rung::Tree,
            cause: DegradeCause::RecoveryMismatch,
        };
        assert_eq!(d.to_string(), "entry 0x1000: packed -> tree (recovery_mismatch)");
        let e = DaisyError::Recovery {
            entry: 0x1000,
            source: RecoverError { message: "mismatch".into() },
        };
        assert!(e.to_string().contains("0x1000"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
