//! Packed execution format: a scheduled [`Group`] lowered into flat,
//! execution-ordered arenas for the simulation hot loop.
//!
//! The tree representation ([`crate::tree`]) is built for *scheduling*:
//! every node owns its own parcel vector, children are ids local to the
//! VLIW, and walking a path chases a pointer per node. Executing it
//! directly makes the simulator's per-cycle loop bound by pointer
//! chasing rather than by parcel semantics. Lowering produces a
//! [`PackedGroup`]:
//!
//! * **one contiguous arena** of [`Operation`]s holding every parcel of
//!   every node in execution order — a node's parcels are a dense
//!   `(offset, len)` run into that arena, so the hot loop iterates
//!   slices without indirection;
//! * **one flat node table** for the whole group with *absolute* child
//!   indices, so condition routing is branch-table indexing rather than
//!   per-VLIW id translation;
//! * **preresolved exits** — every direct-branch exit carries the
//!   chain-link slot index it was lowered to, so the dispatch loop
//!   installs and follows group-to-group links without re-searching the
//!   exit-target table.
//!
//! Commit and load-verify behaviour needs no side tables: the
//! `is_commit`/`bypassed_store` flags ride on each [`Operation`] in the
//! arena, already in execution order.
//!
//! Lowering is total and lossless for any group that passes
//! [`Group::validate`]; the `daisy` core crate's property tests pin the
//! packed walk to the tree walk observation-for-observation.

use crate::op::{OpKind, Operation};
use crate::reg::Reg;
use crate::tree::{Cond, Exit, Group, IndirectVia, NodeKind};

/// Tree instructions a single group entry may execute before a
/// *backward* intra-group edge stops looping and leaves the group
/// through an architected branch to the target VLIW's anchor.
///
/// Shared by every engine (packed, tree, native) so a budget exit is
/// observationally identical across tiers: the limit is always
/// `vliws_executed`-at-group-entry plus this constant, checked at each
/// backward edge before it is followed.
pub const BACKEDGE_VLIW_BUDGET: u64 = 4096;

/// Fast-dispatch class of a parcel, pre-computed at lowering time so
/// the hot loop switches on one dense byte instead of re-deriving the
/// execution shape from [`Operation`] flags on every execution.
///
/// The hottest shapes get their own class (and their own straight-line
/// arm in the engine); anything unusual — trap checks and the
/// load-verify commits of bypassed loads — lands in
/// [`OpClass::General`], which the engine routes to its outlined
/// full-semantics interpreter. A parcel's class covers only the
/// *clean-source* path: the engine falls back to the general
/// interpreter whenever a source carries an exception tag, so poison
/// propagation (§2.1) stays in exactly one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpClass {
    /// Committed [`OpKind::Copy`] — the commit primitive; the single
    /// most frequent parcel in scheduled code.
    Copy,
    /// Committed [`OpKind::Li`].
    LoadImm,
    /// Committed [`OpKind::Add`].
    Add,
    /// Committed [`OpKind::AddImm`].
    AddImm,
    /// Committed [`OpKind::CmpSImm`].
    CmpSImm,
    /// Committed [`OpKind::RotlImmMask`].
    RotlImmMask,
    /// Any other committed non-memory value op (evaluated through the
    /// generic [`crate::op::eval_inline`] table).
    Value,
    /// Speculative non-memory value op: renamed destinations, no
    /// architected event.
    SpecValue,
    /// Memory load (speculative or committed).
    Load,
    /// Memory store.
    Store,
    /// Full-semantics fallback: trap checks and load-verify commits.
    General,
}

/// Pre-decoded per-parcel execution metadata, parallel to
/// [`PackedGroup::ops`]: register numbers as plain dense indices,
/// source-slot masks for a branchless poison check, and the
/// [`OpClass`] dispatch byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMeta {
    /// Fast-path class.
    pub class: OpClass,
    /// Source register indices; unused slots alias register 0.
    pub s: [u8; 3],
    /// `true` where `s[i]` is a real source (masks the slot into the
    /// exception-tag check).
    pub smask: [bool; 3],
    /// Number of real sources.
    pub nsrc: u8,
    /// Primary destination index, or [`OpMeta::NONE`].
    pub d1: u8,
    /// Carry destination index, or [`OpMeta::NONE`].
    pub d2: u8,
}

impl OpMeta {
    /// Sentinel for an absent destination.
    pub const NONE: u8 = u8::MAX;

    /// Pre-decodes one parcel.
    pub fn decode(op: &Operation) -> OpMeta {
        let srcs = op.srcs();
        let mut s = [0u8; 3];
        let mut smask = [false; 3];
        for (i, r) in srcs.iter().enumerate() {
            s[i] = r.0;
            smask[i] = true;
        }
        let class = match op.kind {
            OpKind::Load { .. } => OpClass::Load,
            OpKind::Store { .. } => OpClass::Store,
            OpKind::TrapIf { .. } => OpClass::General,
            _ if op.is_commit && op.bypassed_store => OpClass::General,
            _ if op.speculative => OpClass::SpecValue,
            // The specialized committed arms assume a destination and
            // no carry-out; anything else evaluates generically.
            _ if op.dest.is_none() || op.dest2.is_some() => OpClass::Value,
            OpKind::Copy => OpClass::Copy,
            OpKind::Li => OpClass::LoadImm,
            OpKind::Add => OpClass::Add,
            OpKind::AddImm => OpClass::AddImm,
            OpKind::CmpSImm => OpClass::CmpSImm,
            OpKind::RotlImmMask => OpClass::RotlImmMask,
            _ => OpClass::Value,
        };
        OpMeta {
            class,
            s,
            smask,
            nsrc: srcs.len() as u8,
            d1: op.dest.map_or(OpMeta::NONE, |r| r.0),
            d2: op.dest2.map_or(OpMeta::NONE, |r| r.0),
        }
    }
}

/// Continuation of a [`PackedNode`]: either an in-tree conditional
/// split or one of the group's exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackedCtrl {
    /// Conditional split; `taken` and `fall` are *absolute* indices
    /// into [`PackedGroup::nodes`].
    Cond {
        /// The tested condition (evaluated against VLIW-entry state).
        cond: Cond,
        /// Node index when the condition holds.
        taken: u32,
        /// Node index when it does not.
        fall: u32,
    },
    /// Fall into the root of VLIW `vliw` of the same group (the tree
    /// representation's `Exit::Goto`). Usually forward; a backward
    /// edge (loop rerolling, see `TranslatorConfig::reroll_loops`)
    /// carries an implicit [`BACKEDGE_VLIW_BUDGET`] check in every
    /// engine, exiting through the target VLIW's anchor when the
    /// per-entry budget is spent.
    Next {
        /// Index of the successor VLIW.
        vliw: u32,
    },
    /// Leave the group through a static direct branch.
    Leave {
        /// Base-architecture target address.
        target: u32,
        /// Precomputed chain-link slot: index into the group's
        /// exit-target/link tables ([`PackedGroup::exit_targets`]).
        slot: u32,
    },
    /// Leave through an indirect (LR/CTR) branch.
    Indirect {
        /// Register read for the target address.
        src: Reg,
        /// Which architected register this stands for.
        via: IndirectVia,
    },
    /// Hand the instruction at `addr` to the VMM for interpretation.
    Interp {
        /// Base-architecture address of the instruction to interpret.
        addr: u32,
    },
}

/// One lowered tree node: a dense run of parcels in the group's op
/// arena plus its continuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedNode {
    /// First parcel of this node's run in [`PackedGroup::ops`].
    pub start: u32,
    /// Number of parcels in the run.
    pub len: u32,
    /// What happens after the run executes.
    pub ctrl: PackedCtrl,
}

/// A [`Group`] lowered to flat execution-ordered arrays (see the
/// [module docs](self)).
#[derive(Debug, Clone, PartialEq)]
pub struct PackedGroup {
    /// Every parcel of every node, in execution order. Nodes address
    /// this arena through `(start, len)` runs.
    pub ops: Vec<Operation>,
    /// Pre-decoded execution metadata, parallel to `ops`.
    pub meta: Vec<OpMeta>,
    /// Every node of every VLIW, with absolute child indices.
    pub nodes: Vec<PackedNode>,
    /// Index into [`PackedGroup::nodes`] of each VLIW's root.
    pub roots: Vec<u32>,
    /// Guest anchor address of each VLIW (`Vliw::base_entry`), parallel
    /// to `roots`: the architected exit target when a backward `Next`
    /// edge into that VLIW runs out of [`BACKEDGE_VLIW_BUDGET`].
    anchors: Vec<u32>,
    /// Sorted distinct direct-branch exit targets;
    /// [`PackedCtrl::Leave::slot`] indexes this table (and the runtime
    /// chain-link table kept parallel to it).
    exit_targets: Vec<u32>,
    /// Provenance side-table, parallel to `ops`: the base-architecture
    /// address (`Operation::base_addr`) of the guest instruction each
    /// arena slot was scheduled from. Kept *outside* [`OpMeta`] on
    /// purpose — the execution hot loop never reads it; retirement and
    /// sampling code (`daisy::profile`) indexes it by arena slot.
    origin: Vec<u32>,
    /// Owning-VLIW side-table, parallel to `nodes`: the VLIW index each
    /// flattened node belongs to, so retirement code can map an
    /// absolute node index back to its VLIW (and from there to the
    /// VLIW's `base_entry`) without a binary search over `roots`.
    node_vliw: Vec<u32>,
}

impl PackedGroup {
    /// Lowers a scheduled group.
    ///
    /// # Panics
    ///
    /// Panics if the group contains an `Open` node — translation seals
    /// every node before publishing a group ([`Group::validate`]).
    pub fn lower(group: &Group) -> PackedGroup {
        let mut exit_targets: Vec<u32> = group
            .vliws
            .iter()
            .flat_map(|v| v.nodes().iter())
            .filter_map(|n| match n.kind {
                NodeKind::Exit(Exit::Branch { target }) => Some(target),
                _ => None,
            })
            .collect();
        exit_targets.sort_unstable();
        exit_targets.dedup();

        let anchors: Vec<u32> = group.vliws.iter().map(|v| v.base_entry).collect();
        let total_ops: usize = group.vliws.iter().map(|v| v.num_ops() as usize).sum();
        let total_nodes: usize = group.vliws.iter().map(|v| v.nodes().len()).sum();
        let mut ops = Vec::with_capacity(total_ops);
        let mut meta = Vec::with_capacity(total_ops);
        let mut nodes = Vec::with_capacity(total_nodes);
        let mut roots = Vec::with_capacity(group.vliws.len());
        let mut origin = Vec::with_capacity(total_ops);
        let mut node_vliw = Vec::with_capacity(total_nodes);

        for (vi, v) in group.vliws.iter().enumerate() {
            let base = nodes.len() as u32;
            roots.push(base);
            for n in v.nodes() {
                let start = ops.len() as u32;
                ops.extend(n.ops.iter().copied());
                meta.extend(n.ops.iter().map(OpMeta::decode));
                origin.extend(n.ops.iter().map(|o| o.base_addr));
                node_vliw.push(vi as u32);
                let ctrl = match &n.kind {
                    NodeKind::Open => panic!("cannot lower an open node"),
                    NodeKind::Branch { cond, taken, fall } => {
                        PackedCtrl::Cond { cond: *cond, taken: base + taken.0, fall: base + fall.0 }
                    }
                    NodeKind::Exit(Exit::Goto(next)) => PackedCtrl::Next { vliw: next.0 },
                    NodeKind::Exit(Exit::Branch { target }) => PackedCtrl::Leave {
                        target: *target,
                        slot: exit_targets
                            .binary_search(target)
                            .expect("every Branch target is in exit_targets")
                            as u32,
                    },
                    NodeKind::Exit(Exit::Indirect { src, via }) => {
                        PackedCtrl::Indirect { src: *src, via: *via }
                    }
                    NodeKind::Exit(Exit::Interp { addr }) => PackedCtrl::Interp { addr: *addr },
                };
                nodes.push(PackedNode { start, len: ops.len() as u32 - start, ctrl });
            }
        }
        PackedGroup { ops, meta, nodes, roots, anchors, exit_targets, origin, node_vliw }
    }

    /// Guest anchor address of VLIW `vliw` — the architected boundary a
    /// backward edge into it exits through on budget exhaustion.
    #[inline]
    pub fn anchor(&self, vliw: usize) -> u32 {
        self.anchors[vliw]
    }

    /// Sorted distinct direct-branch exit targets — one chain-link slot
    /// per entry, in table order.
    pub fn exit_targets(&self) -> &[u32] {
        &self.exit_targets
    }

    /// The chain-link slot for a static direct-branch exit `target`, if
    /// the group has such an exit.
    pub fn exit_slot(&self, target: u32) -> Option<usize> {
        self.exit_targets.binary_search(&target).ok()
    }

    /// The dense parcel run of `node`.
    #[inline]
    pub fn node_ops(&self, node: &PackedNode) -> &[Operation] {
        &self.ops[node.start as usize..(node.start + node.len) as usize]
    }

    /// The provenance side-table: `origins()[k]` is the base-architecture
    /// address of the guest instruction arena slot `k` was scheduled
    /// from (parallel to [`PackedGroup::ops`]).
    pub fn origins(&self) -> &[u32] {
        &self.origin
    }

    /// Origin guest PC of arena slot `k` (see [`PackedGroup::origins`]).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of bounds of the op arena.
    pub fn origin_pc(&self, k: usize) -> u32 {
        self.origin[k]
    }

    /// The guest-PC provenance of `node`'s parcel run, parallel to
    /// [`PackedGroup::node_ops`].
    pub fn node_origins(&self, node: &PackedNode) -> &[u32] {
        &self.origin[node.start as usize..(node.start + node.len) as usize]
    }

    /// The owning VLIW index of the node at absolute index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds of the node table.
    pub fn node_vliw(&self, idx: usize) -> u32 {
        self.node_vliw[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use crate::tree::{VliwId, ROOT};

    fn alu() -> Operation {
        Operation::new(OpKind::Add, 0).dst(Reg(32)).src(Reg(1)).src(Reg(2))
    }

    fn two_vliw_group() -> Group {
        let mut g = Group::new(0x1000);
        let v0 = &mut g.vliws[0];
        v0.add_op(ROOT, alu());
        let cond =
            Cond { src: Reg(64), mask: 0b0010, want_set: true, spec_target: None, origin: 0x1000 };
        let (t, f) = v0.split(ROOT, cond);
        v0.seal(t, Exit::Branch { target: 0x2000 });
        v0.add_op(f, alu());
        v0.seal(f, Exit::Goto(VliwId(1)));
        let v1 = g.push_vliw(0x1008);
        g.vliw_mut(v1).add_op(ROOT, alu());
        g.vliw_mut(v1).seal(ROOT, Exit::Branch { target: 0x1000 });
        g
    }

    #[test]
    fn lowering_flattens_nodes_and_ops() {
        let g = two_vliw_group();
        let p = PackedGroup::lower(&g);
        assert_eq!(p.roots, vec![0, 3]);
        assert_eq!(p.nodes.len(), 4);
        assert_eq!(p.ops.len(), 3);
        // Root of VLIW 0: one parcel, conditional split with absolute
        // children.
        let n0 = p.nodes[0];
        assert_eq!((n0.start, n0.len), (0, 1));
        match n0.ctrl {
            PackedCtrl::Cond { taken, fall, .. } => {
                assert_eq!((taken, fall), (1, 2));
            }
            other => panic!("expected Cond, got {other:?}"),
        }
        // Fall side: one parcel, then into VLIW 1.
        assert_eq!(p.nodes[2].ctrl, PackedCtrl::Next { vliw: 1 });
        assert_eq!(p.node_ops(&p.nodes[2]).len(), 1);
    }

    #[test]
    fn provenance_side_table_tracks_arena_slots() {
        let mut g = Group::new(0x1000);
        let v0 = &mut g.vliws[0];
        v0.add_op(ROOT, Operation::new(OpKind::Add, 0x1000).dst(Reg(32)).src(Reg(1)).src(Reg(2)));
        v0.add_op(ROOT, Operation::new(OpKind::Li, 0x1004).dst(Reg(33)));
        let cond =
            Cond { src: Reg(64), mask: 0b0010, want_set: true, spec_target: None, origin: 0x1008 };
        let (t, f) = v0.split(ROOT, cond);
        v0.add_op(t, Operation::new(OpKind::Add, 0x200c).dst(Reg(34)).src(Reg(1)).src(Reg(2)));
        v0.seal(t, Exit::Branch { target: 0x2000 });
        v0.seal(f, Exit::Branch { target: 0x100c });
        let p = PackedGroup::lower(&g);

        // Arena-slot provenance is parallel to the op arena and mirrors
        // each parcel's base_addr without the hot loop touching ops.
        assert_eq!(p.origins(), &[0x1000, 0x1004, 0x200c]);
        assert_eq!(p.origins().len(), p.ops.len());
        for (k, op) in p.ops.iter().enumerate() {
            assert_eq!(p.origin_pc(k), op.base_addr);
        }
        // Node-level views line up with node_ops.
        assert_eq!(p.node_origins(&p.nodes[0]), &[0x1000, 0x1004]);
        assert_eq!(p.node_origins(&p.nodes[1]), &[0x200c]);
        assert!(p.node_origins(&p.nodes[2]).is_empty());
        // Branch provenance rides on the lowered condition.
        let PackedCtrl::Cond { cond, .. } = p.nodes[0].ctrl else { panic!("root splits") };
        assert_eq!(cond.origin, 0x1008);
    }

    #[test]
    fn node_vliw_side_table_maps_absolute_indices() {
        let g = two_vliw_group();
        let p = PackedGroup::lower(&g);
        // VLIW 0 owns nodes 0..3, VLIW 1 owns node 3.
        assert_eq!(
            (0..p.nodes.len()).map(|i| p.node_vliw(i)).collect::<Vec<_>>(),
            vec![0, 0, 0, 1]
        );
    }

    #[test]
    fn exits_carry_precomputed_slots() {
        let g = two_vliw_group();
        let p = PackedGroup::lower(&g);
        assert_eq!(p.exit_targets(), &[0x1000, 0x2000]);
        let PackedCtrl::Leave { target, slot } = p.nodes[1].ctrl else {
            panic!("taken side is a direct exit");
        };
        assert_eq!(target, 0x2000);
        assert_eq!(slot as usize, p.exit_slot(0x2000).unwrap());
        let PackedCtrl::Leave { target, slot } = p.nodes[3].ctrl else {
            panic!("vliw 1 exits directly");
        };
        assert_eq!(target, 0x1000);
        assert_eq!(slot, 0);
    }
}
