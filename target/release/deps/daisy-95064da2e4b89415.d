/root/repo/target/release/deps/daisy-95064da2e4b89415.d: crates/core/src/lib.rs crates/core/src/convert.rs crates/core/src/engine.rs crates/core/src/oracle.rs crates/core/src/overhead.rs crates/core/src/precise.rs crates/core/src/sched.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/trace.rs crates/core/src/vmm.rs

/root/repo/target/release/deps/libdaisy-95064da2e4b89415.rlib: crates/core/src/lib.rs crates/core/src/convert.rs crates/core/src/engine.rs crates/core/src/oracle.rs crates/core/src/overhead.rs crates/core/src/precise.rs crates/core/src/sched.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/trace.rs crates/core/src/vmm.rs

/root/repo/target/release/deps/libdaisy-95064da2e4b89415.rmeta: crates/core/src/lib.rs crates/core/src/convert.rs crates/core/src/engine.rs crates/core/src/oracle.rs crates/core/src/overhead.rs crates/core/src/precise.rs crates/core/src/sched.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/trace.rs crates/core/src/vmm.rs

crates/core/src/lib.rs:
crates/core/src/convert.rs:
crates/core/src/engine.rs:
crates/core/src/oracle.rs:
crates/core/src/overhead.rs:
crates/core/src/precise.rs:
crates/core/src/sched.rs:
crates/core/src/stats.rs:
crates/core/src/system.rs:
crates/core/src/trace.rs:
crates/core/src/vmm.rs:
