//! Dispatch-path cost: every group entry through the VMM's page/entry
//! lookup versus direct group chaining (links followed on hot exits).
//!
//! Besides the criterion timings, a full `cargo bench` run writes
//! `BENCH_dispatch.json` at the repository root with the dispatch
//! counters and mean wall-clock time per mode, so the chaining win is
//! machine-readable. Under `cargo test` the suite runs a quick
//! correctness pass and leaves the JSON untouched — debug-build
//! timings would be meaningless.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use daisy::prelude::*;
use daisy_workloads::Workload;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const WORKLOADS: &[&str] = &["hist", "compress", "c_sieve"];

fn run_once(
    w: &Workload,
    prog: &daisy_ppc::asm::Program,
    chaining: bool,
) -> DaisySystem<daisy_ppc::PpcIsa> {
    let mut sys =
        DaisySystem::<daisy_ppc::PpcIsa>::builder().mem_size(w.mem_size).chaining(chaining).build();
    sys.load(prog).unwrap();
    sys.run(10 * w.max_instrs).unwrap();
    sys
}

fn bench_dispatch(c: &mut Criterion) {
    let full = std::env::args().any(|a| a == "--bench");
    let mut g = c.benchmark_group("dispatch");
    g.sample_size(10);
    let mut rows = Vec::new();
    for &name in WORKLOADS {
        let w = daisy_workloads::by_name(name).unwrap();
        let prog = w.program();
        for chaining in [true, false] {
            let mode = if chaining { "chained" } else { "vmm" };
            g.bench_with_input(BenchmarkId::new(name, mode), &chaining, |b, &ch| {
                b.iter(|| black_box(run_once(&w, &prog, ch)));
            });
        }
        if !full {
            continue;
        }

        // One measured pass per mode for the JSON report.
        let cell = |chaining: bool| {
            let start = Instant::now();
            let sys = run_once(&w, &prog, chaining);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            format!(
                concat!(
                    "{{\"vmm_dispatches\": {}, \"chained_dispatches\": {}, ",
                    "\"total_dispatches\": {}, \"wall_ms\": {:.3}}}"
                ),
                sys.stats.groups_entered,
                sys.stats.chain.chained_dispatches,
                sys.stats.total_dispatches(),
                wall_ms
            )
        };
        let (on, off) = (cell(true), cell(false));
        let mut row = String::new();
        let _ =
            write!(row, "    {{\"name\": \"{name}\", \"chained\": {on}, \"unchained\": {off}}}");
        rows.push(row);
    }
    g.finish();

    if !full {
        // Smoke mode: don't overwrite the measured JSON with debug noise.
        return;
    }
    let json = format!(
        "{{\n  \"bench\": \"dispatch\",\n  \"workloads\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dispatch.json");
    std::fs::write(path, json).expect("write BENCH_dispatch.json");
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
