/root/repo/target/debug/deps/ablation-7261368b902e5903.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/ablation-7261368b902e5903: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
