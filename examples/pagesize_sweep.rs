//! The translation-unit-size trade-off (paper Figures 5.3–5.5) on one
//! workload: larger pages widen the scheduler's scope but grow the
//! translated code; smaller pages multiply cross-page jumps.
//!
//! ```sh
//! cargo run --release --example pagesize_sweep [workload]
//! ```

use daisy::prelude::*;
use daisy_ppc::interp::Cpu;
use daisy_ppc::mem::Memory;
use daisy_ppc::PpcIsa;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "c_sieve".to_owned());
    let w = daisy_workloads::by_name(&name).unwrap_or_else(|| panic!("unknown workload `{name}`"));
    let prog = w.program();

    let mut mem = Memory::new(w.mem_size);
    prog.load_into(&mut mem).unwrap();
    let mut cpu = Cpu::new(prog.entry);
    cpu.run(&mut mem, w.max_instrs).unwrap();
    let base = cpu.ninstrs;

    println!("{name}: {base} dynamic base instructions");
    println!(
        "{:>9} {:>8} {:>12} {:>12} {:>10}",
        "page", "ILP", "code bytes", "xpage-jumps", "groups"
    );
    for page_size in [128u32, 256, 512, 1024, 2048, 4096, 8192, 16384] {
        let cfg = TranslatorConfig { page_size, ..TranslatorConfig::default() };
        let mut sys = DaisySystem::<PpcIsa>::builder()
            .mem_size(w.mem_size)
            .translator(cfg)
            .cache(Hierarchy::infinite())
            .build();
        sys.load(&prog).unwrap();
        sys.run(50 * w.max_instrs).unwrap();
        w.check(&sys.cpu, &sys.mem).expect("correct at every page size");
        println!(
            "{:>9} {:>8.2} {:>12} {:>12} {:>10}",
            page_size,
            sys.stats.pathlength_reduction(base),
            sys.vmm.stats.code_bytes_total,
            sys.stats.crosspage.total(),
            sys.vmm.stats.groups_translated,
        );
    }
}
