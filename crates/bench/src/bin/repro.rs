//! `repro` — regenerates every table and figure of the paper's
//! Chapter 5 evaluation (and the Chapter 6 oracle study).
//!
//! ```text
//! repro [EXPERIMENT ...]
//!
//! EXPERIMENTS:
//!   table5.1 fig5.1 table5.2 table5.3 table5.4 fig5.2 table5.5
//!   table5.6 table5.7 fig5.3-5.5 table5.8 table5.9 oracle ablation
//!   interpretive utilization
//!   all        (default: everything)
//! ```

use daisy_bench::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");
    let mut ran = false;

    if want("table5.1") {
        ran = true;
        println!("{}", tables::print_table5_1(&tables::table5_1()));
    }
    if want("fig5.1") {
        ran = true;
        println!("{}", tables::print_fig5_1(&tables::fig5_1()));
    }
    if want("table5.2") {
        ran = true;
        println!("{}", tables::print_table5_2(&tables::table5_2()));
    }
    if want("table5.3") || want("table5.4") || want("fig5.2") {
        ran = true;
        let t53 = tables::table5_3();
        if want("table5.3") {
            println!("{}", tables::print_table5_3(&t53));
        }
        if want("table5.4") {
            println!("{}", tables::print_table5_4(&tables::table5_4(&t53)));
        }
        if want("fig5.2") {
            println!("{}", tables::print_fig5_2(&tables::fig5_2(&t53)));
        }
    }
    if want("table5.5") {
        ran = true;
        println!("{}", tables::print_table5_5(&tables::table5_5()));
    }
    if want("table5.6") {
        ran = true;
        println!("{}", tables::print_table5_6(&tables::table5_6()));
    }
    if want("table5.7") {
        ran = true;
        println!("{}", tables::print_table5_7(&tables::table5_7()));
    }
    if want("fig5.3-5.5") || want("fig5.3") || want("fig5.4") || want("fig5.5") {
        ran = true;
        println!("{}", tables::print_page_sweep(&tables::page_sweep()));
    }
    if want("table5.8") {
        ran = true;
        println!("{}", tables::print_table5_8(&tables::table5_8()));
    }
    if want("table5.9") {
        ran = true;
        println!("{}", tables::print_table5_9(&tables::table5_9()));
    }
    if want("oracle") {
        ran = true;
        println!("{}", tables::print_oracle(&tables::oracle_table()));
    }
    if want("ablation") {
        ran = true;
        println!("{}", tables::print_ablation(&tables::ablation()));
    }
    if want("interpretive") {
        ran = true;
        println!("{}", tables::print_interpretive(&tables::interpretive()));
    }
    if want("utilization") {
        ran = true;
        println!("{}", tables::print_utilization(&tables::utilization()));
    }
    if !ran {
        eprintln!("unknown experiment(s): {args:?}");
        eprintln!(
            "known: table5.1 fig5.1 table5.2 table5.3 table5.4 fig5.2 table5.5 \
             table5.6 table5.7 fig5.3-5.5 table5.8 table5.9 oracle ablation \
             interpretive utilization all"
        );
        std::process::exit(2);
    }
}
