/root/repo/target/debug/deps/daisy_baseline-59940a8919a754bb.d: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

/root/repo/target/debug/deps/daisy_baseline-59940a8919a754bb: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

crates/baseline/src/lib.rs:
crates/baseline/src/ppc604e.rs:
crates/baseline/src/profile.rs:
crates/baseline/src/trad.rs:
