//! `sort` — shellsort over pseudo-random 32-bit keys generated
//! in-program, standing in for the AIX `sort` utility of the paper.

use crate::Workload;
use daisy_ppc::asm::{Asm, Program};
use daisy_ppc::interp::Cpu;
use daisy_ppc::mem::Memory;
use daisy_ppc::reg::{CrField, Gpr};

const ARRAY: u32 = 0x4_0000;
const N: u32 = 3000;
const LCG_A: u32 = 1_103_515_245;
const LCG_C: u32 = 12_345;
const SEED: u32 = 0x0BAD_5EED;

fn build() -> Program {
    let mut a = Asm::new(0x1000);
    let cr = CrField(0);
    let cr1 = CrField(1);
    let (res, chk, x, mul, add, i, off, base, n) =
        (Gpr(3), Gpr(4), Gpr(5), Gpr(6), Gpr(7), Gpr(8), Gpr(9), Gpr(14), Gpr(15));
    let (gap, j, v, w, jg, t) = (Gpr(16), Gpr(17), Gpr(18), Gpr(19), Gpr(20), Gpr(21));

    a.li32(base, ARRAY);
    a.li32(n, N);
    a.li32(mul, LCG_A);
    a.li32(add, LCG_C);
    a.li32(x, SEED);

    // Generate: a[i] = x = x*A + C.
    a.li(i, 0);
    a.label("gen");
    a.mullw(x, x, mul);
    a.add(x, x, add);
    a.slwi(off, i, 2);
    a.stwx(x, base, off);
    a.addi(i, i, 1);
    a.cmpw(cr, i, n);
    a.blt(cr, "gen");

    // Shellsort, gap sequence n/2, n/4, …
    a.srwi(gap, n, 1);
    a.label("gap_loop");
    a.cmpwi(cr, gap, 0);
    a.beq(cr, "verify");
    a.mr(i, gap);
    a.label("insert_loop");
    a.cmpw(cr, i, n);
    a.bge(cr, "next_gap");
    // v = a[i]; j = i
    a.slwi(off, i, 2);
    a.lwzx(v, base, off);
    a.mr(j, i);
    a.label("sift");
    a.cmpw(cr, j, gap);
    a.blt(cr, "place");
    // w = a[j-gap]; if w <= v stop
    a.subf(jg, gap, j);
    a.slwi(off, jg, 2);
    a.lwzx(w, base, off);
    a.cmpw(cr1, w, v);
    a.ble(cr1, "place");
    // a[j] = w; j -= gap
    a.slwi(t, j, 2);
    a.stwx(w, base, t);
    a.mr(j, jg);
    a.b("sift");
    a.label("place");
    a.slwi(off, j, 2);
    a.stwx(v, base, off);
    a.addi(i, i, 1);
    a.b("insert_loop");
    a.label("next_gap");
    a.srwi(gap, gap, 1);
    a.b("gap_loop");

    // Verify sorted and checksum.
    a.label("verify");
    a.li(res, 1);
    a.li(chk, 0);
    a.li(i, 0);
    a.slwi(off, i, 2);
    a.lwzx(w, base, off); // previous = a[0]
    a.add(chk, chk, w);
    a.li(i, 1);
    a.label("vloop");
    a.cmpw(cr, i, n);
    a.bge(cr, "done");
    a.slwi(off, i, 2);
    a.lwzx(v, base, off);
    a.add(chk, chk, v);
    a.cmpw(cr1, w, v);
    a.ble(cr1, "vok");
    a.li(res, 0);
    a.label("vok");
    a.mr(w, v);
    a.addi(i, i, 1);
    a.b("vloop");
    a.label("done");
    a.sc();
    a.finish().expect("sort assembles")
}

/// Rust recomputation of the expected checksum.
pub fn expected_checksum() -> u32 {
    let mut x = SEED;
    let mut v = Vec::with_capacity(N as usize);
    for _ in 0..N {
        x = x.wrapping_mul(LCG_A).wrapping_add(LCG_C);
        v.push(x as i32);
    }
    v.sort_unstable();
    v.iter().fold(0u32, |acc, &e| acc.wrapping_add(e as u32))
}

fn check(cpu: &Cpu, mem: &Memory) -> Result<(), String> {
    if cpu.gpr[3] != 1 {
        return Err("sort: output not sorted".to_owned());
    }
    let want = expected_checksum();
    if cpu.gpr[4] != want {
        return Err(format!("sort: checksum {:#x}, want {want:#x}", cpu.gpr[4]));
    }
    // Spot-check the extremes against the Rust sort.
    let mut x = SEED;
    let mut v = Vec::with_capacity(N as usize);
    for _ in 0..N {
        x = x.wrapping_mul(LCG_A).wrapping_add(LCG_C);
        v.push(x as i32);
    }
    v.sort_unstable();
    let first = mem.read_u32(ARRAY).map_err(|e| e.to_string())? as i32;
    let last = mem.read_u32(ARRAY + 4 * (N - 1)).map_err(|e| e.to_string())? as i32;
    if (first, last) != (v[0], v[N as usize - 1]) {
        return Err(format!(
            "sort: extremes ({first}, {last}) vs ({}, {})",
            v[0],
            v[N as usize - 1]
        ));
    }
    Ok(())
}

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "sort", mem_size: 0x8_0000, max_instrs: 60_000_000, build, check }
}
