#!/usr/bin/env bash
# Lint gate: clippy warnings are errors, formatting is canonical
# (see rustfmt.toml), the API docs must build warning-free, and every
# doctest must pass. Run before sending changes; CI runs the same.
set -euo pipefail
cd "$(dirname "$0")/.."

# Build artifacts must never be tracked (target/ is ignored).
if git ls-files | grep -E '(^|/)target/' >/dev/null; then
  echo "error: build artifacts under target/ are git-tracked:" >&2
  git ls-files | grep -E '(^|/)target/' >&2
  exit 1
fi

# Guest-agnosticism gate: the translation core must not depend on any
# frontend crate unless its feature is asked for. `cargo tree` with
# default features shows the dependency graph the `daisy-rv32` tests
# compile against; a stray `daisy-ppc` edge here means PowerPC types
# leaked back into the core API.
if cargo tree -p daisy -e normal | grep -q 'daisy-ppc'; then
  echo "error: daisy (core) depends on daisy-ppc without the 'ppc' feature:" >&2
  cargo tree -p daisy -e normal >&2
  exit 1
fi

cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
cargo test --workspace --doc

# Docs link check: every relative markdown link in README.md and
# docs/*.md must point at an existing file, and every #anchor at a
# real heading in the target document.
scripts/check_doc_links.py README.md docs/*.md

# Bench smoke-run: single-iteration (no timing, no JSON) — keeps the
# bench harnesses compiling and their correctness asserts honest.
cargo test -q -p daisy-bench --benches

# Cross-ISA differential smoke: the same algorithms on the PowerPC and
# RV32 guests, each through translation and its interpreter oracle,
# must agree bit-exactly (scalar results and, for hist, counter
# memory). Also runs the RV32-only pin that the core builds and
# translates with the RV32 frontend alone (no `ppc` feature).
cargo test -q --test cross_isa
cargo test -q -p daisy-rv32 --test translate

# Fault-injection smoke: a fixed 32-seed sweep of every fault kind on
# the fast workloads. Fails on any panic, unrecoverable error, oracle
# divergence, or a fault kind that never records a ladder step.
cargo run -q --release -p daisy-bench --bin inject -- --seeds 32

# Preemption-fuzz smoke: 32 seeds of timer/UART interrupt schedules
# against the SoC firmware on the packed and (below, on x86-64) native
# tiers; each campaign's delivery schedule is replayed instruction-
# exactly on the interpreter oracle and diffed bit for bit, UART
# transcript included (docs/soc.md). The full 256-seed matrix is
# `cargo test --release --test preempt -- --ignored`.
cargo run -q --release -p daisy-bench --bin inject -- \
  --seeds 32 --kind preempt

# Guest-profile report smoke: two workloads through the full
# provenance → attribution → export pipeline. The shape assertion
# checks all five metrics per workload; the sort Chrome trace is kept
# as a CI artifact (load it in chrome://tracing or Perfetto — see
# docs/observability.md).
artifacts=target/ci-artifacts
mkdir -p "$artifacts"
cargo run -q --release -p daisy-bench --bin report -- \
  --out "$artifacts/BENCH_report.smoke.json" \
  --trace-dir "$artifacts" wc sort
scripts/check_report_shape.sh "$artifacts/BENCH_report.smoke.json" 2
[ -s "$artifacts/sort.trace.json" ] || {
  echo "error: sort Chrome trace artifact missing" >&2
  exit 1
}

# Live-metrics health smoke: two workloads through the metrics
# registry with periodic snapshots, then the shape assertion over the
# JSON document and the Prometheus exposition (the structural
# validation is crates/bench/tests/health_schema.rs; the committed
# nine-workload document is BENCH_health.json — regenerate with
# `cargo run --release -p daisy-bench --bin health`).
cargo run -q --release -p daisy-bench --bin health -- \
  --out "$artifacts/BENCH_health.smoke.json" \
  --prom "$artifacts/health.smoke.prom" cmp hist
scripts/check_health_shape.sh \
  "$artifacts/BENCH_health.smoke.json" "$artifacts/health.smoke.prom" 2
scripts/check_health_shape.sh BENCH_health.json "" 9

# Native-tier smoke (x86-64 only): the nine-workload native ≡ packed
# observational-equivalence test, then a 16-seed injection sweep of
# the two invalidation-heavy fault kinds with the ladder starting at
# the native rung. Other hosts build the same code but the tier
# declines to engage, so there is nothing extra to test.
if [ "$(uname -m)" = "x86_64" ]; then
  cargo test -q --test prop_native \
    native_is_observably_the_packed_engine_on_every_workload
  for kind in hot_patch chain_sever interrupt_storm; do
    cargo run -q --release -p daisy-bench --bin inject -- \
      --native --seeds 16 --kind "$kind"
  done
  # Preemption fuzzing with compiled native groups live: deliveries
  # must land precisely at rerolled back-edge yields.
  cargo run -q --release -p daisy-bench --bin inject -- \
    --native --seeds 32 --kind preempt
  # Coverage gate: native template coverage is deterministic, so any
  # workload dropping more than 5 points below the committed
  # BENCH_engine.json is a real lowering regression, not noise.
  cargo run -q --release -p daisy-bench --bin coverage -- \
    --check BENCH_engine.json --tolerance 0.05
else
  echo "skip: native-tier smoke needs an x86-64 host (this is $(uname -m));"
  echo "      the native tier falls back to packed execution here."
fi
