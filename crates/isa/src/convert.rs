//! ISA-neutral output types of instruction conversion.
//!
//! "Each operation is immediately scheduled in a VLIW … as soon as it is
//! disassembled from the binary original code, and converted into RISC
//! primitives (if a CISCy operation)" (paper §2). Each frontend's
//! `Isa::convert` produces a [`Converted`] — the RISC primitives plus a
//! [`Flow`] describing the instruction's control behaviour — and the
//! scheduler consumes it without knowing which guest produced it.
//!
//! The produced primitives name *architected* resources; renaming into
//! the non-architected pool is the scheduler's job.

use daisy_vliw::op::Operation;
use daisy_vliw::reg::Reg;
use daisy_vliw::tree::IndirectVia;

/// A branch condition in architected terms (before renaming): test one
/// bit of a condition-value register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CondSpec {
    /// The architected register holding the 4-bit condition value. For
    /// computed-condition branches (`cond_compare`) this is a
    /// placeholder filled by the scheduler with the freshly computed
    /// compare result.
    pub field: Reg,
    /// Bit mask within the field (LT = 0b1000 … SO = 0b0001).
    pub mask: u32,
    /// Taken when the bit equals this.
    pub want_set: bool,
}

/// The control behaviour of a converted instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Flow {
    /// Straight-line: fall through to the next instruction.
    Fall,
    /// Unconditional direct branch.
    Jump {
        /// Resolved target address.
        target: u32,
    },
    /// Conditional direct branch. When `cond_compare` is set, the
    /// scheduler must point the condition at the result of the *last*
    /// op in `ops` (a freshly emitted compare), not at an architected
    /// field — PowerPC's CTR-decrement branches and RV32I's compare-
    /// and-branch instructions both use this.
    CondJump {
        /// The tested condition.
        cond: CondSpec,
        /// Taken target.
        target: u32,
        /// Condition comes from the last emitted compare op.
        cond_compare: bool,
    },
    /// Unconditional indirect branch.
    IndirectJump {
        /// Which register supplies the target.
        via: IndirectVia,
    },
    /// Conditional indirect branch (e.g. PowerPC `bnelr`).
    CondIndirect {
        /// The tested condition.
        cond: CondSpec,
        /// Which register supplies the target.
        via: IndirectVia,
        /// Condition comes from the last emitted compare op.
        cond_compare: bool,
    },
    /// Must be handed to the VMM's interpreter (system calls,
    /// return-from-interrupt, privileged state access, unsupported
    /// encodings).
    Interp,
}

/// A converted instruction: its RISC primitives plus control behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Converted {
    /// Primitives in execution order (architected operands).
    pub ops: Vec<Operation>,
    /// Control flow after the ops.
    pub flow: Flow,
    /// True when the instruction writes the guest's link register (the
    /// scheduler emits the link-update primitive itself so it can
    /// capture the pre-update value for link-and-return forms).
    pub links: bool,
}

impl Converted {
    /// Straight-line conversion: `ops` then fall through.
    pub fn fall(ops: Vec<Operation>) -> Converted {
        Converted { ops, flow: Flow::Fall, links: false }
    }

    /// Route the instruction to the VMM's interpreter.
    pub fn interp() -> Converted {
        Converted { ops: Vec::new(), flow: Flow::Interp, links: false }
    }
}

/// Where a branch may transfer control to, resolved against its own address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchKind {
    /// Direct target address known statically.
    Direct(u32),
    /// Indirect through the link register.
    ViaLr,
    /// Indirect through the count register.
    ViaCtr,
}

/// Static description of an instruction's control flow, from
/// `Isa::branch_info`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Destination on taken.
    pub kind: BranchKind,
    /// True for unconditional branches.
    pub unconditional: bool,
    /// True when the instruction writes the link register.
    pub links: bool,
    /// True when the instruction decrements the guest's loop counter.
    pub decrements_ctr: bool,
}
