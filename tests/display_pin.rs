//! Pins for the human-readable `Display` one-liners: the flight
//! recorder's post-mortem dump and every operator-facing error render
//! through these formats, so they are stable output, not debug text.
//! A change here is a change to what an operator greps in a dump —
//! make it deliberately.

use daisy::precise::RecoverError;
use daisy::prelude::*;
use daisy::trace::{ExcClass, Tier};
use daisy::DegradeCause;

/// Every `TraceEvent` variant's one-liner, exactly.
#[test]
fn trace_event_one_liners_are_pinned() {
    let cases: Vec<(TraceEvent, &str)> = vec![
        (
            TraceEvent::Translate {
                entry: 0x1000,
                page: 16,
                vliws: 7,
                code_bytes: 212,
                tier: Tier::Cold,
                conservative: false,
            },
            "translate 0x1000: 7 vliws, 212 bytes (cold)",
        ),
        (
            TraceEvent::Translate {
                entry: 0x2040,
                page: 32,
                vliws: 3,
                code_bytes: 96,
                tier: Tier::Hot,
                conservative: true,
            },
            "translate 0x2040: 3 vliws, 96 bytes (hot, conservative)",
        ),
        (TraceEvent::CastOut { page: 5, groups: 2 }, "cast out page 5 (2 groups)"),
        (TraceEvent::Invalidate { page: 9 }, "invalidate page 9"),
        (TraceEvent::CodeModified { addr: 0x1200 }, "code modified by store at 0x1200"),
        (
            TraceEvent::ChainInstall { from: 0x1000, to: 0x1100, indirect: false },
            "chain 0x1000 -> 0x1100",
        ),
        (
            TraceEvent::ChainInstall { from: 0x1000, to: 0x1100, indirect: true },
            "chain 0x1000 -> 0x1100 (indirect)",
        ),
        (TraceEvent::ChainSever { from: 0x1000, target: 0x1100 }, "sever 0x1000 -> 0x1100"),
        (
            TraceEvent::AliasRestart { entry: 0x1000, addr: 0x8000 },
            "alias restart in 0x1000 at load 0x8000",
        ),
        (TraceEvent::AliasRetranslate { entry: 0x1000 }, "alias retranslate 0x1000"),
        (
            TraceEvent::Exception { class: ExcClass::LoadFault, base_addr: 0x1010 },
            "exception load_fault at 0x1010",
        ),
        (
            TraceEvent::Exception { class: ExcClass::StoreFault, base_addr: 0x1014 },
            "exception store_fault at 0x1014",
        ),
        (
            TraceEvent::Exception { class: ExcClass::Trap, base_addr: 0x1018 },
            "exception trap at 0x1018",
        ),
        (TraceEvent::ExternalInterrupt { pc: 0x1020 }, "external interrupt at 0x1020"),
        (TraceEvent::MmioBail { addr: 0xffff_0000 }, "mmio bail at 0xffff0000"),
        (
            TraceEvent::HotPromotion { entry: 0x1000, dispatches: 64 },
            "hot promotion 0x1000 after 64 dispatches",
        ),
        (
            TraceEvent::NativeCompile { entry: 0x1000, outcome: "compiled" },
            "native compile 0x1000: compiled",
        ),
        (
            TraceEvent::Degraded {
                entry: 0x1000,
                from: Rung::Packed,
                to: Rung::Tree,
                cause: DegradeCause::CastOutPressure,
            },
            "degraded entry 0x1000: packed -> tree (cast_out_pressure)",
        ),
    ];
    for (ev, want) in cases {
        assert_eq!(ev.to_string(), want, "Display drifted for {ev:?}");
    }
}

/// Rung and cause names as they appear in dumps, metric labels, and
/// degradation lines.
#[test]
fn rung_and_cause_names_are_pinned() {
    let rungs: Vec<String> = Rung::ALL.iter().map(ToString::to_string).collect();
    assert_eq!(rungs, ["native", "packed", "tree", "conservative", "interpret"]);
    let causes: Vec<String> = DegradeCause::ALL.iter().map(ToString::to_string).collect();
    assert_eq!(
        causes,
        [
            "recovery_mismatch",
            "illegal_op",
            "code_rewrite",
            "cast_out_pressure",
            "interrupt_storm",
            "chain_unstable",
            "translation_dropped",
            "hint_budget",
            "forced",
        ]
    );
}

/// The unrecoverable-fault rendering (`Degradation`'s own pin lives
/// with its unit tests in `daisy::error`).
#[test]
fn daisy_error_display_is_pinned() {
    let e = DaisyError::Recovery {
        entry: 0x2000,
        source: RecoverError { message: "expected r3, found store".to_owned() },
    };
    assert_eq!(
        e.to_string(),
        "unrecoverable at entry 0x2000: precise-exception recovery failed: \
         expected r3, found store"
    );
}
