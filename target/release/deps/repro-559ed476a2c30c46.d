/root/repo/target/release/deps/repro-559ed476a2c30c46.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-559ed476a2c30c46: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
