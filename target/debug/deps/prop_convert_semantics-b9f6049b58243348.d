/root/repo/target/debug/deps/prop_convert_semantics-b9f6049b58243348.d: tests/prop_convert_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libprop_convert_semantics-b9f6049b58243348.rmeta: tests/prop_convert_semantics.rs Cargo.toml

tests/prop_convert_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
