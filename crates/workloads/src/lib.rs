//! The benchmark workload suite of the paper's Chapter 5.
//!
//! The paper measures AIX utilities (`lex`, `fgrep`, `wc`, `cmp`,
//! `sort`), the Stanford sieve, SPECint95 `compress`, and SPECint95
//! `gcc`. Real AIX binaries are unavailable, so each workload is the
//! same algorithm hand-written against the `daisy-ppc` assembler and
//! assembled to genuine PowerPC machine code, operating on synthetic
//! inputs embedded in emulated memory. `gcc` — whose role in the paper
//! is "large working set, frequent cross-page jumps, poor I-cache
//! locality" — is stood in for by [`xlat`], a table-driven bytecode-VM
//! interpreter with handlers deliberately spread across many pages.
//!
//! Every workload ships a checker that recomputes the expected result
//! in Rust and validates the final architected state, so the same
//! programs serve as end-to-end correctness tests for the translator.
//!
//! # Example
//!
//! ```
//! use daisy_ppc::interp::{Cpu, StopReason};
//! use daisy_ppc::mem::Memory;
//!
//! let w = daisy_workloads::by_name("c_sieve").unwrap();
//! let prog = w.program();
//! let mut mem = Memory::new(w.mem_size);
//! prog.load_into(&mut mem).unwrap();
//! let mut cpu = Cpu::new(prog.entry);
//! assert_eq!(cpu.run(&mut mem, w.max_instrs).unwrap(), StopReason::Syscall);
//! w.check(&cpu, &mem).unwrap();
//! ```

pub mod cmp;
pub mod compress;
pub mod fgrep;
pub mod firmware;
pub mod hist;
pub mod lex;
pub mod sieve;
pub mod sort;
pub mod wc;
pub mod xlat;

/// A benchmark for the PowerPC guest: the guest-generic
/// [`daisy_isa::Workload`] instantiated with [`daisy_ppc::PpcIsa`].
pub type Workload = daisy_isa::Workload<daisy_ppc::PpcIsa>;

/// All workloads: the paper's Table 5.1 list (with `xlat` standing in
/// for `gcc`), plus `hist`, this reproduction's addition for exercising
/// run-time load-store aliasing (Table 5.7).
pub fn all() -> Vec<Workload> {
    vec![
        compress::workload(),
        lex::workload(),
        fgrep::workload(),
        wc::workload(),
        cmp::workload(),
        sort::workload(),
        sieve::workload(),
        xlat::workload(),
        hist::workload(),
    ]
}

/// Looks up one workload by its table name. Also resolves
/// `soc_firmware` ([`firmware`]), which is deliberately absent from
/// [`all`]: it needs an MMIO bus attached and parks at a `halt` label
/// instead of executing `sc`, so the generic run-to-syscall harnesses
/// iterating [`all`] cannot drive it.
pub fn by_name(name: &str) -> Option<Workload> {
    if name == "soc_firmware" {
        return Some(firmware::workload());
    }
    all().into_iter().find(|w| w.name == name)
}

// The synthetic-input generators moved to the guest-agnostic crate so
// other frontends' workload ports consume byte-identical inputs; these
// re-exports keep the original paths working.
pub use daisy_isa::synth::{prose, source_text, XorShift};

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_ppc::interp::{Cpu, StopReason};
    use daisy_ppc::mem::Memory;

    #[test]
    fn all_workloads_run_and_check_on_the_interpreter() {
        for w in all() {
            let prog = w.program();
            let mut mem = Memory::new(w.mem_size);
            prog.load_into(&mut mem).unwrap();
            let mut cpu = Cpu::new(prog.entry);
            let stop = cpu.run(&mut mem, w.max_instrs).unwrap();
            assert_eq!(stop, StopReason::Syscall, "{} did not finish: {stop:?}", w.name);
            w.check(&cpu, &mem).unwrap_or_else(|e| panic!("{} failed check: {e}", w.name));
        }
    }

    #[test]
    fn workload_names_match_paper_tables() {
        let names: Vec<_> = all().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            ["compress", "lex", "fgrep", "wc", "cmp", "sort", "c_sieve", "xlat", "hist"]
        );
    }
}
