//! The benchmark workload suite of the paper's Chapter 5.
//!
//! The paper measures AIX utilities (`lex`, `fgrep`, `wc`, `cmp`,
//! `sort`), the Stanford sieve, SPECint95 `compress`, and SPECint95
//! `gcc`. Real AIX binaries are unavailable, so each workload is the
//! same algorithm hand-written against the `daisy-ppc` assembler and
//! assembled to genuine PowerPC machine code, operating on synthetic
//! inputs embedded in emulated memory. `gcc` — whose role in the paper
//! is "large working set, frequent cross-page jumps, poor I-cache
//! locality" — is stood in for by [`xlat`], a table-driven bytecode-VM
//! interpreter with handlers deliberately spread across many pages.
//!
//! Every workload ships a checker that recomputes the expected result
//! in Rust and validates the final architected state, so the same
//! programs serve as end-to-end correctness tests for the translator.
//!
//! # Example
//!
//! ```
//! use daisy_ppc::interp::{Cpu, StopReason};
//! use daisy_ppc::mem::Memory;
//!
//! let w = daisy_workloads::by_name("c_sieve").unwrap();
//! let prog = w.program();
//! let mut mem = Memory::new(w.mem_size);
//! prog.load_into(&mut mem).unwrap();
//! let mut cpu = Cpu::new(prog.entry);
//! assert_eq!(cpu.run(&mut mem, w.max_instrs).unwrap(), StopReason::Syscall);
//! w.check(&cpu, &mem).unwrap();
//! ```

pub mod cmp;
pub mod compress;
pub mod fgrep;
pub mod hist;
pub mod lex;
pub mod sieve;
pub mod sort;
pub mod wc;
pub mod xlat;

use daisy_ppc::asm::Program;
use daisy_ppc::interp::Cpu;
use daisy_ppc::mem::Memory;

/// A benchmark: a program builder plus a result checker.
pub struct Workload {
    /// Benchmark name as used in the paper's tables.
    pub name: &'static str,
    /// Emulated physical memory required.
    pub mem_size: u32,
    /// Interpreter/engine instruction budget (generous).
    pub max_instrs: u64,
    build: fn() -> Program,
    check: fn(&Cpu, &Memory) -> Result<(), String>,
}

impl Workload {
    /// Assembles the program image.
    pub fn program(&self) -> Program {
        (self.build)()
    }

    /// Validates the final architected state against a Rust
    /// recomputation of the expected result.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn check(&self, cpu: &Cpu, mem: &Memory) -> Result<(), String> {
        (self.check)(cpu, mem)
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload").field("name", &self.name).finish()
    }
}

/// All workloads: the paper's Table 5.1 list (with `xlat` standing in
/// for `gcc`), plus `hist`, this reproduction's addition for exercising
/// run-time load-store aliasing (Table 5.7).
pub fn all() -> Vec<Workload> {
    vec![
        compress::workload(),
        lex::workload(),
        fgrep::workload(),
        wc::workload(),
        cmp::workload(),
        sort::workload(),
        sieve::workload(),
        xlat::workload(),
        hist::workload(),
    ]
}

/// Looks up one workload by its table name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// Deterministic xorshift32 generator used for synthetic inputs (the
/// same sequence is reproduced by checkers).
#[derive(Debug, Clone)]
pub struct XorShift(pub u32);

impl XorShift {
    /// Next pseudo-random value.
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.0 = x;
        x
    }
}

/// Builds the synthetic "prose" input shared by `wc`, `fgrep`, and
/// `compress`: words of 1–9 lowercase letters, spaces, newlines, with
/// the literal word `needle` sprinkled in deterministically.
pub fn prose(len: usize, seed: u32) -> Vec<u8> {
    let mut rng = XorShift(seed);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let r = rng.next_u32();
        if r.is_multiple_of(97) {
            out.extend_from_slice(b"needle");
        } else {
            let wl = 1 + (r % 9) as usize;
            for i in 0..wl {
                out.push(b'a' + ((r >> (3 * i)) % 26) as u8);
            }
        }
        if rng.next_u32().is_multiple_of(11) {
            out.push(b'\n');
        } else {
            out.push(b' ');
        }
    }
    out.truncate(len);
    out
}

/// Builds the synthetic "source code" input for `lex`.
pub fn source_text(len: usize, seed: u32) -> Vec<u8> {
    let mut rng = XorShift(seed);
    let idents = ["count", "i", "total", "buf", "x1", "tmp", "offset"];
    let puncts = ["= ", "+ ", "; ", "( ", ") ", "* ", "{ ", "} "];
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        match rng.next_u32() % 4 {
            0 => {
                out.extend_from_slice(
                    idents[(rng.next_u32() % idents.len() as u32) as usize].as_bytes(),
                );
                out.push(b' ');
            }
            1 => {
                let n = rng.next_u32() % 10_000;
                out.extend_from_slice(n.to_string().as_bytes());
                out.push(b' ');
            }
            2 => out.extend_from_slice(
                puncts[(rng.next_u32() % puncts.len() as u32) as usize].as_bytes(),
            ),
            _ => out.push(b'\n'),
        }
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_ppc::interp::StopReason;

    #[test]
    fn all_workloads_run_and_check_on_the_interpreter() {
        for w in all() {
            let prog = w.program();
            let mut mem = Memory::new(w.mem_size);
            prog.load_into(&mut mem).unwrap();
            let mut cpu = Cpu::new(prog.entry);
            let stop = cpu.run(&mut mem, w.max_instrs).unwrap();
            assert_eq!(stop, StopReason::Syscall, "{} did not finish: {stop:?}", w.name);
            w.check(&cpu, &mem).unwrap_or_else(|e| panic!("{} failed check: {e}", w.name));
        }
    }

    #[test]
    fn workload_names_match_paper_tables() {
        let names: Vec<_> = all().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            ["compress", "lex", "fgrep", "wc", "cmp", "sort", "c_sieve", "xlat", "hist"]
        );
    }

    #[test]
    fn prose_is_deterministic() {
        assert_eq!(prose(1000, 42), prose(1000, 42));
        assert_ne!(prose(1000, 42), prose(1000, 43));
    }
}
