//! `hist` — indirect histogram update, added to the suite (beyond the
//! paper's list) to exercise DAISY's run-time load-store alias
//! machinery at realistic rates.
//!
//! The kernel is `hist[text[i]] += 1`: the load of the next iteration's
//! counter hoists above the previous iteration's counter store (their
//! indices are data-dependent and unknowable at translation time), and
//! whenever two consecutive input bytes are equal the speculation is
//! wrong — load-verify catches it and restarts, which is exactly the
//! event Table 5.7 counts. Prose input makes that a percent-level
//! occurrence, matching the paper's "one failure every 65–500 VLIWs"
//! band for its aliasing-heavy benchmarks.

use crate::{prose, Workload};
use daisy_ppc::asm::{Asm, Program};
use daisy_ppc::interp::Cpu;
use daisy_ppc::mem::Memory;
use daisy_ppc::reg::{CrField, Gpr};

const TEXT: u32 = 0x3_0000;
const HIST: u32 = 0x3_8000;
const LEN: usize = 24 * 1024;
const SEED: u32 = 0xA11A_5E55;

fn build() -> Program {
    let mut a = Asm::new(0x1000);
    let cr = CrField(0);
    let (sum, i, j, j4, v, base, len, hbase) =
        (Gpr(3), Gpr(7), Gpr(8), Gpr(9), Gpr(10), Gpr(14), Gpr(15), Gpr(16));

    a.li32(base, TEXT);
    a.li32(hbase, HIST);
    a.li32(len, LEN as u32);
    a.li(i, 0);

    a.label("loop");
    a.lbzx(j, base, i);
    a.slwi(j4, j, 2);
    a.lwzx(v, hbase, j4);
    a.addi(v, v, 1);
    a.stwx(v, hbase, j4);
    a.addi(i, i, 1);
    a.cmpw(cr, i, len);
    a.blt(cr, "loop");

    // Weighted reduction so the result depends on every bucket.
    a.li(sum, 0);
    a.li(i, 0);
    a.label("reduce");
    a.slwi(j4, i, 2);
    a.lwzx(v, hbase, j4);
    a.mullw(v, v, i);
    a.add(sum, sum, v);
    a.addi(i, i, 1);
    a.cmpwi(cr, i, 256);
    a.blt(cr, "reduce");
    a.sc();

    a.data(TEXT, &prose(LEN, SEED));
    a.finish().expect("hist assembles")
}

/// Rust recomputation of the weighted bucket sum.
pub fn expected() -> u32 {
    let text = prose(LEN, SEED);
    let mut hist = [0u32; 256];
    for &c in &text {
        hist[c as usize] += 1;
    }
    hist.iter().enumerate().fold(0u32, |acc, (i, &n)| acc.wrapping_add(n.wrapping_mul(i as u32)))
}

fn check(cpu: &Cpu, _mem: &Memory) -> Result<(), String> {
    let want = expected();
    if cpu.gpr[3] == want {
        Ok(())
    } else {
        Err(format!("hist: got {}, want {want}", cpu.gpr[3]))
    }
}

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "hist", mem_size: 0x6_0000, max_instrs: 10_000_000, build, check }
}
