//! `xlat` — a table-driven bytecode-VM interpreter standing in for the
//! paper's SPECint95 `gcc`.
//!
//! What matters about `gcc` in the paper's evaluation is its *shape*:
//! a large instruction working set spread over many pages, frequent
//! indirect branches, a cross-page jump every ~10 VLIWs, and a 19%
//! first-level I-cache miss rate. `xlat` reproduces that shape: 24
//! opcode handlers are padded to 512 bytes each so the interpreter's
//! core loop sprawls over several pages, every dispatch is a `bcctr`
//! through a computed handler address, and every handler returns to the
//! dispatcher with a cross-page direct branch.

use crate::Workload;
use daisy_ppc::asm::{Asm, Program};
use daisy_ppc::interp::Cpu;
use daisy_ppc::mem::Memory;
use daisy_ppc::reg::{CrField, Gpr};

const HBASE: u32 = 0x2000;
const HSIZE: u32 = 512;
const BC: u32 = 0x3_0000;
const STK: u32 = 0x5_0000;
const VARS: u32 = 0x5_4000;

const OUTER: u8 = 100;
const INNER: u8 = 150;

/// Bytecode opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// Stop; result = var 1.
    Halt = 0,
    /// Push the zero-extended operand.
    PushI = 1,
    /// Pop b, a; push a + b.
    Add = 2,
    /// Pop b, a; push a − b.
    Sub = 3,
    /// Pop b, a; push a × b.
    Mul = 4,
    /// Duplicate the top of stack.
    Dup = 5,
    /// Discard the top of stack.
    Drop = 6,
    /// Push var\[operand\].
    LoadV = 7,
    /// Pop into var\[operand\].
    StoreV = 8,
    /// Relative jump (operand = signed instruction offset from next).
    Jmp = 9,
    /// Pop; jump if nonzero.
    Jnz = 10,
    /// var\[operand\] += 1.
    Inc = 11,
    /// var\[operand\] −= 1.
    Dec = 12,
    /// Pop b, a; push a & b.
    And = 13,
    /// Pop b, a; push a | b.
    Or = 14,
    /// Pop b, a; push a ^ b.
    Xor = 15,
    /// Negate top of stack.
    Neg = 16,
    /// Bitwise-not top of stack.
    Not = 17,
    /// Top of stack += sign-extended operand.
    AddI = 18,
    /// Pop b, a; push (a < b) signed.
    CmpLt = 19,
    /// Swap the two top stack slots.
    Swap = 20,
    /// Push the second-from-top slot.
    Over = 21,
    /// Top of stack ×= sign-extended operand.
    MulI = 22,
    /// Square the top of stack.
    Sq = 23,
}

const NUM_OPS: u32 = 24;

/// The benchmark bytecode: `acc = OUTER × Σ_{i=1..INNER} i²`,
/// exercising dispatch, the stack, variables, and both jumps.
pub fn bytecode() -> Vec<u8> {
    // acc = 0; outer counter = OUTER.
    let mut b: Vec<(Op, u8)> =
        vec![(Op::PushI, 0), (Op::StoreV, 1), (Op::PushI, OUTER), (Op::StoreV, 2)];
    let outer_top = b.len();
    b.push((Op::PushI, INNER));
    b.push((Op::StoreV, 0));
    let inner_top = b.len();
    b.push((Op::LoadV, 0));
    b.push((Op::Sq, 0));
    b.push((Op::LoadV, 1));
    b.push((Op::Add, 0));
    b.push((Op::StoreV, 1)); // acc += i*i
    b.push((Op::Dec, 0));
    b.push((Op::LoadV, 0));
    let jnz_inner = b.len();
    b.push((Op::Jnz, 0));
    b.push((Op::Dec, 2));
    b.push((Op::LoadV, 2));
    let jnz_outer = b.len();
    b.push((Op::Jnz, 0));
    b.push((Op::Halt, 0));
    // Fix up the branch offsets (relative to the following instruction).
    let off = |from: usize, to: usize| (to as i32 - (from as i32 + 1)) as i8 as u8;
    b[jnz_inner].1 = off(jnz_inner, inner_top);
    b[jnz_outer].1 = off(jnz_outer, outer_top);
    b.iter().flat_map(|(op, arg)| [*op as u8, *arg]).collect()
}

/// Rust replication of the VM run: the expected accumulator.
pub fn expected_acc() -> u32 {
    let sum_sq: u32 = (1..=u32::from(INNER)).map(|i| i * i).sum();
    u32::from(OUTER) * sum_sq
}

fn build() -> Program {
    let mut a = Asm::new(0x1000);
    let cr = CrField(0);
    let (op, arg, t1, t2, t3) = (Gpr(5), Gpr(6), Gpr(7), Gpr(8), Gpr(9));
    let (hbase, pc, bcbase, sp, vars) = (Gpr(12), Gpr(13), Gpr(14), Gpr(15), Gpr(16));

    // Init.
    a.li32(hbase, HBASE);
    a.li(pc, 0);
    a.li32(bcbase, BC);
    a.li32(sp, STK);
    a.li32(vars, VARS);

    a.label("dispatch");
    a.lbzx(op, bcbase, pc);
    a.addi(t1, pc, 1);
    a.lbzx(arg, bcbase, t1);
    a.slwi(t2, op, 9);
    a.add(t2, t2, hbase);
    a.mtctr(t2);
    a.bctr();

    let pad_to = |a: &mut Asm, addr: u32| {
        assert!(a.here() <= addr, "handler overflowed its slot at {addr:#x}");
        while a.here() < addr {
            a.nop();
        }
    };
    let push = |a: &mut Asm, r: Gpr| {
        a.stw(r, 0, sp);
        a.addi(sp, sp, 4);
    };
    let pop = |a: &mut Asm, r: Gpr| {
        a.lwzu(r, -4, sp);
    };
    let next = |a: &mut Asm| {
        a.addi(pc, pc, 2);
        a.b("dispatch");
    };

    for opc in 0..NUM_OPS {
        pad_to(&mut a, HBASE + opc * HSIZE);
        match opc {
            0 => {
                // HALT: r3 = var[1]; r4 = stack depth in bytes.
                a.lwz(Gpr(3), 4, vars);
                a.li32(t1, STK);
                a.subf(Gpr(4), t1, sp);
                a.sc();
            }
            1 => {
                push(&mut a, arg);
                next(&mut a);
            }
            2 => {
                pop(&mut a, t1);
                pop(&mut a, t2);
                a.add(t1, t2, t1);
                push(&mut a, t1);
                next(&mut a);
            }
            3 => {
                pop(&mut a, t1);
                pop(&mut a, t2);
                a.subf(t1, t1, t2);
                push(&mut a, t1);
                next(&mut a);
            }
            4 => {
                pop(&mut a, t1);
                pop(&mut a, t2);
                a.mullw(t1, t2, t1);
                push(&mut a, t1);
                next(&mut a);
            }
            5 => {
                a.lwz(t1, -4, sp);
                push(&mut a, t1);
                next(&mut a);
            }
            6 => {
                a.addi(sp, sp, -4);
                next(&mut a);
            }
            7 => {
                a.slwi(t1, arg, 2);
                a.lwzx(t2, vars, t1);
                push(&mut a, t2);
                next(&mut a);
            }
            8 => {
                pop(&mut a, t2);
                a.slwi(t1, arg, 2);
                a.stwx(t2, vars, t1);
                next(&mut a);
            }
            9 => {
                a.extsb(t1, arg);
                a.slwi(t1, t1, 1);
                a.addi(pc, pc, 2);
                a.add(pc, pc, t1);
                a.b("dispatch");
            }
            10 => {
                pop(&mut a, t2);
                a.addi(pc, pc, 2);
                a.cmpwi(cr, t2, 0);
                a.beq(cr, "jnz_fall");
                a.extsb(t1, arg);
                a.slwi(t1, t1, 1);
                a.add(pc, pc, t1);
                a.label("jnz_fall");
                a.b("dispatch");
            }
            11 => {
                a.slwi(t1, arg, 2);
                a.lwzx(t2, vars, t1);
                a.addi(t2, t2, 1);
                a.stwx(t2, vars, t1);
                next(&mut a);
            }
            12 => {
                a.slwi(t1, arg, 2);
                a.lwzx(t2, vars, t1);
                a.addi(t2, t2, -1);
                a.stwx(t2, vars, t1);
                next(&mut a);
            }
            13 => {
                pop(&mut a, t1);
                pop(&mut a, t2);
                a.and(t1, t2, t1);
                push(&mut a, t1);
                next(&mut a);
            }
            14 => {
                pop(&mut a, t1);
                pop(&mut a, t2);
                a.or(t1, t2, t1);
                push(&mut a, t1);
                next(&mut a);
            }
            15 => {
                pop(&mut a, t1);
                pop(&mut a, t2);
                a.xor(t1, t2, t1);
                push(&mut a, t1);
                next(&mut a);
            }
            16 => {
                a.lwz(t1, -4, sp);
                a.neg(t1, t1);
                a.stw(t1, -4, sp);
                next(&mut a);
            }
            17 => {
                a.lwz(t1, -4, sp);
                a.nor(t1, t1, t1);
                a.stw(t1, -4, sp);
                next(&mut a);
            }
            18 => {
                a.lwz(t1, -4, sp);
                a.extsb(t2, arg);
                a.add(t1, t1, t2);
                a.stw(t1, -4, sp);
                next(&mut a);
            }
            19 => {
                pop(&mut a, t1);
                pop(&mut a, t2);
                a.cmpw(cr, t2, t1);
                a.li(t3, 0);
                a.bge(cr, "cmplt_done");
                a.li(t3, 1);
                a.label("cmplt_done");
                push(&mut a, t3);
                next(&mut a);
            }
            20 => {
                a.lwz(t1, -4, sp);
                a.lwz(t2, -8, sp);
                a.stw(t1, -8, sp);
                a.stw(t2, -4, sp);
                next(&mut a);
            }
            21 => {
                a.lwz(t1, -8, sp);
                push(&mut a, t1);
                next(&mut a);
            }
            22 => {
                a.lwz(t1, -4, sp);
                a.extsb(t2, arg);
                a.mullw(t1, t1, t2);
                a.stw(t1, -4, sp);
                next(&mut a);
            }
            23 => {
                a.lwz(t1, -4, sp);
                a.mullw(t1, t1, t1);
                a.stw(t1, -4, sp);
                next(&mut a);
            }
            _ => unreachable!(),
        }
    }

    a.data(BC, &bytecode());
    a.finish().expect("xlat assembles")
}

fn check(cpu: &Cpu, _mem: &Memory) -> Result<(), String> {
    let want = expected_acc();
    if cpu.gpr[3] != want {
        return Err(format!("xlat: acc {}, want {want}", cpu.gpr[3]));
    }
    if cpu.gpr[4] != 0 {
        return Err(format!("xlat: stack not empty at halt ({} bytes)", cpu.gpr[4] as i32));
    }
    Ok(())
}

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "xlat", mem_size: 0x8_0000, max_instrs: 30_000_000, build, check }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytecode_is_well_formed() {
        let bc = bytecode();
        assert_eq!(bc.len() % 2, 0);
        assert_eq!(bc[bc.len() - 2], Op::Halt as u8);
    }

    #[test]
    fn expected_value() {
        assert_eq!(expected_acc(), 100 * 1_136_275);
    }
}
