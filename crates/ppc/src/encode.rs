//! Bit-exact PowerPC instruction encoding.
//!
//! DAISY consumes real base-architecture *binaries*: the workloads are
//! assembled to genuine 32-bit big-endian PowerPC words and the
//! translator re-decodes them, exactly as the paper's system reads pages
//! of PowerPC code out of memory.

use crate::insn::{Arith2Op, ArithOp, CrOp, Insn, LogicImmOp, LogicOp, MemWidth, ShiftOp, UnaryOp};
use crate::reg::Gpr;

fn op(opcode: u32) -> u32 {
    opcode << 26
}

fn rt(r: Gpr) -> u32 {
    u32::from(r.0 & 31) << 21
}

fn ra(r: Gpr) -> u32 {
    u32::from(r.0 & 31) << 16
}

fn rb(r: Gpr) -> u32 {
    u32::from(r.0 & 31) << 11
}

fn d16(v: i16) -> u32 {
    (v as u16) as u32
}

fn xo10(v: u32) -> u32 {
    v << 1
}

fn xo9(v: u32) -> u32 {
    v << 1
}

fn oe(b: bool) -> u32 {
    (b as u32) << 10
}

fn rcb(b: bool) -> u32 {
    b as u32
}

/// X-form extended opcodes used by [`encode`] and the decoder.
pub mod xops {
    pub const CMP: u32 = 0;
    pub const TW: u32 = 4;
    pub const SUBFC: u32 = 8;
    pub const ADDC: u32 = 10;
    pub const MULHWU: u32 = 11;
    pub const MFCR: u32 = 19;
    pub const LWZX: u32 = 23;
    pub const SLW: u32 = 24;
    pub const CNTLZW: u32 = 26;
    pub const AND: u32 = 28;
    pub const CMPL: u32 = 32;
    pub const SUBF: u32 = 40;
    pub const LWZUX: u32 = 55;
    pub const ANDC: u32 = 60;
    pub const MULHW: u32 = 75;
    pub const MFMSR: u32 = 83;
    pub const LBZX: u32 = 87;
    pub const NEG: u32 = 104;
    pub const LBZUX: u32 = 119;
    pub const NOR: u32 = 124;
    pub const SUBFE: u32 = 136;
    pub const ADDE: u32 = 138;
    pub const MTCRF: u32 = 144;
    pub const MTMSR: u32 = 146;
    pub const STWX: u32 = 151;
    pub const STWUX: u32 = 183;
    pub const SUBFZE: u32 = 200;
    pub const ADDZE: u32 = 202;
    pub const STBX: u32 = 215;
    pub const SUBFME: u32 = 232;
    pub const ADDME: u32 = 234;
    pub const MULLW: u32 = 235;
    pub const STBUX: u32 = 247;
    pub const ADD: u32 = 266;
    pub const LHZX: u32 = 279;
    pub const EQV: u32 = 284;
    pub const LHZUX: u32 = 311;
    pub const XOR: u32 = 316;
    pub const MFSPR: u32 = 339;
    pub const LHAX: u32 = 343;
    pub const LHAUX: u32 = 375;
    pub const STHX: u32 = 407;
    pub const ORC: u32 = 412;
    pub const STHUX: u32 = 439;
    pub const OR: u32 = 444;
    pub const DIVWU: u32 = 459;
    pub const MTSPR: u32 = 467;
    pub const NAND: u32 = 476;
    pub const DIVW: u32 = 491;
    pub const SRW: u32 = 536;
    pub const SYNC: u32 = 598;
    pub const SRAW: u32 = 792;
    pub const SRAWI: u32 = 824;
    pub const EIEIO: u32 = 854;
    pub const EXTSH: u32 = 922;
    pub const EXTSB: u32 = 954;
    // Op-19 extended opcodes.
    pub const MCRF: u32 = 0;
    pub const BCLR: u32 = 16;
    pub const CRNOR: u32 = 33;
    pub const RFI: u32 = 50;
    pub const CRANDC: u32 = 129;
    pub const ISYNC: u32 = 150;
    pub const CRXOR: u32 = 193;
    pub const CRNAND: u32 = 225;
    pub const CRAND: u32 = 257;
    pub const CREQV: u32 = 289;
    pub const CRORC: u32 = 417;
    pub const CROR: u32 = 449;
    pub const BCCTR: u32 = 528;
}

fn spr_field(n: u16) -> u32 {
    // The 10-bit SPR field swaps the two 5-bit halves of the SPR number.
    let lo = u32::from(n) & 0x1F;
    let hi = (u32::from(n) >> 5) & 0x1F;
    ((lo << 5) | hi) << 11
}

/// Encodes an instruction to its 32-bit PowerPC word.
///
/// [`Insn::Invalid`] round-trips to the stored raw word so arbitrary data
/// mixed into code pages survives a decode/encode cycle (self-referential
/// code, paper §3.1).
pub fn encode(insn: &Insn) -> u32 {
    use xops::*;
    match *insn {
        Insn::Addi { rt: t, ra: a, si } => op(14) | rt(t) | ra(a) | d16(si),
        Insn::Addis { rt: t, ra: a, si } => op(15) | rt(t) | ra(a) | d16(si),
        Insn::Addic { rt: t, ra: a, si, rc } => {
            op(if rc { 13 } else { 12 }) | rt(t) | ra(a) | d16(si)
        }
        Insn::Subfic { rt: t, ra: a, si } => op(8) | rt(t) | ra(a) | d16(si),
        Insn::Mulli { rt: t, ra: a, si } => op(7) | rt(t) | ra(a) | d16(si),
        Insn::Arith { op: o, rt: t, ra: a, rb: b, oe: e, rc } => {
            let x = match o {
                ArithOp::Add => ADD,
                ArithOp::Addc => ADDC,
                ArithOp::Adde => ADDE,
                ArithOp::Subf => SUBF,
                ArithOp::Subfc => SUBFC,
                ArithOp::Subfe => SUBFE,
                ArithOp::Mullw => MULLW,
                ArithOp::Mulhw => MULHW,
                ArithOp::Mulhwu => MULHWU,
                ArithOp::Divw => DIVW,
                ArithOp::Divwu => DIVWU,
            };
            // mulhw/mulhwu have no architected OE bit (bit 21 must be 0).
            let e = e && !matches!(o, ArithOp::Mulhw | ArithOp::Mulhwu);
            op(31) | rt(t) | ra(a) | rb(b) | oe(e) | xo9(x) | rcb(rc)
        }
        Insn::Arith2 { op: o, rt: t, ra: a, oe: e, rc } => {
            let x = match o {
                Arith2Op::Neg => NEG,
                Arith2Op::Addze => ADDZE,
                Arith2Op::Addme => ADDME,
                Arith2Op::Subfze => SUBFZE,
                Arith2Op::Subfme => SUBFME,
            };
            op(31) | rt(t) | ra(a) | oe(e) | xo9(x) | rcb(rc)
        }
        Insn::Logic { op: o, ra: a, rs, rb: b, rc } => {
            let x = match o {
                LogicOp::And => AND,
                LogicOp::Or => OR,
                LogicOp::Xor => XOR,
                LogicOp::Nand => NAND,
                LogicOp::Nor => NOR,
                LogicOp::Andc => ANDC,
                LogicOp::Orc => ORC,
                LogicOp::Eqv => EQV,
            };
            op(31) | rt(rs) | ra(a) | rb(b) | xo10(x) | rcb(rc)
        }
        Insn::LogicImm { op: o, ra: a, rs, ui } => {
            let p = match o {
                LogicImmOp::Ori => 24,
                LogicImmOp::Oris => 25,
                LogicImmOp::Xori => 26,
                LogicImmOp::Xoris => 27,
                LogicImmOp::Andi => 28,
                LogicImmOp::Andis => 29,
            };
            op(p) | rt(rs) | ra(a) | u32::from(ui)
        }
        Insn::Shift { op: o, ra: a, rs, rb: b, rc } => {
            let x = match o {
                ShiftOp::Slw => SLW,
                ShiftOp::Srw => SRW,
                ShiftOp::Sraw => SRAW,
            };
            op(31) | rt(rs) | ra(a) | rb(b) | xo10(x) | rcb(rc)
        }
        Insn::Srawi { ra: a, rs, sh, rc } => {
            op(31) | rt(rs) | ra(a) | (u32::from(sh & 31) << 11) | xo10(SRAWI) | rcb(rc)
        }
        Insn::Rlwinm { ra: a, rs, sh, mb, me, rc } => {
            op(21)
                | rt(rs)
                | ra(a)
                | (u32::from(sh & 31) << 11)
                | (u32::from(mb & 31) << 6)
                | (u32::from(me & 31) << 1)
                | rcb(rc)
        }
        Insn::Rlwimi { ra: a, rs, sh, mb, me, rc } => {
            op(20)
                | rt(rs)
                | ra(a)
                | (u32::from(sh & 31) << 11)
                | (u32::from(mb & 31) << 6)
                | (u32::from(me & 31) << 1)
                | rcb(rc)
        }
        Insn::Rlwnm { ra: a, rs, rb: b, mb, me, rc } => {
            op(23)
                | rt(rs)
                | ra(a)
                | rb(b)
                | (u32::from(mb & 31) << 6)
                | (u32::from(me & 31) << 1)
                | rcb(rc)
        }
        Insn::Unary { op: o, ra: a, rs, rc } => {
            let x = match o {
                UnaryOp::Cntlzw => CNTLZW,
                UnaryOp::Extsb => EXTSB,
                UnaryOp::Extsh => EXTSH,
            };
            op(31) | rt(rs) | ra(a) | xo10(x) | rcb(rc)
        }
        Insn::Cmp { bf, signed, ra: a, rb: b } => {
            op(31)
                | (u32::from(bf.0 & 7) << 23)
                | ra(a)
                | rb(b)
                | xo10(if signed { CMP } else { CMPL })
        }
        Insn::CmpImm { bf, signed, ra: a, imm } => {
            let p = if signed { 11 } else { 10 };
            op(p) | (u32::from(bf.0 & 7) << 23) | ra(a) | (imm as u32 & 0xFFFF)
        }
        Insn::Load { width, algebraic, update, indexed, rt: t, ra: a, rb: b, d } => {
            if indexed {
                let x = match (width, algebraic, update) {
                    (MemWidth::Word, false, false) => LWZX,
                    (MemWidth::Word, false, true) => LWZUX,
                    (MemWidth::Byte, false, false) => LBZX,
                    (MemWidth::Byte, false, true) => LBZUX,
                    (MemWidth::Half, false, false) => LHZX,
                    (MemWidth::Half, false, true) => LHZUX,
                    (MemWidth::Half, true, false) => LHAX,
                    (MemWidth::Half, true, true) => LHAUX,
                    _ => LWZX,
                };
                op(31) | rt(t) | ra(a) | rb(b) | xo10(x)
            } else {
                let p = match (width, algebraic, update) {
                    (MemWidth::Word, false, false) => 32,
                    (MemWidth::Word, false, true) => 33,
                    (MemWidth::Byte, false, false) => 34,
                    (MemWidth::Byte, false, true) => 35,
                    (MemWidth::Half, false, false) => 40,
                    (MemWidth::Half, false, true) => 41,
                    (MemWidth::Half, true, false) => 42,
                    (MemWidth::Half, true, true) => 43,
                    _ => 32,
                };
                op(p) | rt(t) | ra(a) | d16(d)
            }
        }
        Insn::Store { width, update, indexed, rs, ra: a, rb: b, d } => {
            if indexed {
                let x = match (width, update) {
                    (MemWidth::Word, false) => STWX,
                    (MemWidth::Word, true) => STWUX,
                    (MemWidth::Byte, false) => STBX,
                    (MemWidth::Byte, true) => STBUX,
                    (MemWidth::Half, false) => STHX,
                    (MemWidth::Half, true) => STHUX,
                };
                op(31) | rt(rs) | ra(a) | rb(b) | xo10(x)
            } else {
                let p = match (width, update) {
                    (MemWidth::Word, false) => 36,
                    (MemWidth::Word, true) => 37,
                    (MemWidth::Byte, false) => 38,
                    (MemWidth::Byte, true) => 39,
                    (MemWidth::Half, false) => 44,
                    (MemWidth::Half, true) => 45,
                };
                op(p) | rt(rs) | ra(a) | d16(d)
            }
        }
        Insn::Lmw { rt: t, ra: a, d } => op(46) | rt(t) | ra(a) | d16(d),
        Insn::Stmw { rs, ra: a, d } => op(47) | rt(rs) | ra(a) | d16(d),
        Insn::BranchI { li, aa, lk } => {
            op(18) | ((li as u32) & 0x03FF_FFFC) | ((aa as u32) << 1) | (lk as u32)
        }
        Insn::BranchC { bo, bi, bd, aa, lk } => {
            op(16)
                | (u32::from(bo & 31) << 21)
                | (u32::from(bi.0 & 31) << 16)
                | ((bd as i32 as u32) & 0xFFFC)
                | ((aa as u32) << 1)
                | (lk as u32)
        }
        Insn::BranchClr { bo, bi, lk } => {
            op(19)
                | (u32::from(bo & 31) << 21)
                | (u32::from(bi.0 & 31) << 16)
                | xo10(BCLR)
                | (lk as u32)
        }
        Insn::BranchCctr { bo, bi, lk } => {
            op(19)
                | (u32::from(bo & 31) << 21)
                | (u32::from(bi.0 & 31) << 16)
                | xo10(BCCTR)
                | (lk as u32)
        }
        Insn::CrLogic { op: o, bt, ba, bb } => {
            let x = match o {
                CrOp::And => CRAND,
                CrOp::Or => CROR,
                CrOp::Xor => CRXOR,
                CrOp::Nand => CRNAND,
                CrOp::Nor => CRNOR,
                CrOp::Eqv => CREQV,
                CrOp::Andc => CRANDC,
                CrOp::Orc => CRORC,
            };
            op(19)
                | (u32::from(bt.0 & 31) << 21)
                | (u32::from(ba.0 & 31) << 16)
                | (u32::from(bb.0 & 31) << 11)
                | xo10(x)
        }
        Insn::Mcrf { bf, bfa } => {
            op(19) | (u32::from(bf.0 & 7) << 23) | (u32::from(bfa.0 & 7) << 18) | xo10(MCRF)
        }
        Insn::Mfcr { rt: t } => op(31) | rt(t) | xo10(MFCR),
        Insn::Mtcrf { fxm, rs } => op(31) | rt(rs) | (u32::from(fxm) << 12) | xo10(MTCRF),
        Insn::Mfspr { rt: t, spr } => op(31) | rt(t) | spr_field(spr.number()) | xo10(MFSPR),
        Insn::Mtspr { spr, rs } => op(31) | rt(rs) | spr_field(spr.number()) | xo10(MTSPR),
        Insn::Mfmsr { rt: t } => op(31) | rt(t) | xo10(MFMSR),
        Insn::Mtmsr { rs } => op(31) | rt(rs) | xo10(MTMSR),
        Insn::Sc => op(17) | 2,
        Insn::Rfi => op(19) | xo10(RFI),
        Insn::Sync => op(31) | xo10(SYNC),
        Insn::Isync => op(19) | xo10(ISYNC),
        Insn::Eieio => op(31) | xo10(EIEIO),
        Insn::Tw { to, ra: a, rb: b } => {
            op(31) | (u32::from(to & 31) << 21) | ra(a) | rb(b) | xo10(TW)
        }
        Insn::Twi { to, ra: a, si } => op(3) | (u32::from(to & 31) << 21) | ra(a) | d16(si),
        Insn::Invalid(w) => w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::CrBit;

    #[test]
    fn known_encodings() {
        // Cross-checked against the PowerPC architecture manual examples.
        // addi r3,r0,1  ("li r3,1")
        assert_eq!(encode(&Insn::Addi { rt: Gpr(3), ra: Gpr(0), si: 1 }), 0x3860_0001);
        // add r4,r5,r6
        assert_eq!(
            encode(&Insn::Arith {
                op: ArithOp::Add,
                rt: Gpr(4),
                ra: Gpr(5),
                rb: Gpr(6),
                oe: false,
                rc: false
            }),
            0x7C85_3214
        );
        // lwz r9,8(r1)
        assert_eq!(
            encode(&Insn::Load {
                width: MemWidth::Word,
                algebraic: false,
                update: false,
                indexed: false,
                rt: Gpr(9),
                ra: Gpr(1),
                rb: Gpr(0),
                d: 8
            }),
            0x8121_0008
        );
        // blr == bclr 20,0
        assert_eq!(encode(&Insn::BranchClr { bo: 20, bi: CrBit(0), lk: false }), 0x4E80_0020);
        // sc
        assert_eq!(encode(&Insn::Sc), 0x4400_0002);
    }

    #[test]
    fn branch_displacement_masking() {
        // b .-4
        let w = encode(&Insn::BranchI { li: -4, aa: false, lk: false });
        assert_eq!(w, 0x4BFF_FFFC);
    }
}
