//! Schema tests for the `report` binary's artifacts: the
//! `BENCH_report.json` document and the Chrome `trace_event` export
//! must be valid JSON with the shapes the consumers (CI's shape
//! assertion, `chrome://tracing`, Perfetto) expect.
//!
//! The environment is offline, so validation uses a minimal
//! recursive-descent JSON parser below — strict enough to reject
//! malformed output (trailing commas, bare NaN, unquoted keys), small
//! enough to audit at a glance.

use daisy_bench::reporting::{chrome_trace_for, report_json, report_workload};
use std::collections::BTreeMap;

// ---------------------------------------------------------------- JSON

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser { s: text.as_bytes(), i: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.s.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.s.get(self.i).copied().ok_or_else(|| "unexpected end of input".to_owned())
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected byte '{}' at {}", c as char, self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.s.len()
            && matches!(self.s[self.i], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.s.get(self.i).ok_or_else(|| "unterminated string".to_owned())?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.s.get(self.i).ok_or_else(|| "unterminated escape".to_owned())?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_owned())?;
                            self.i += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                }
                c if c < 0x20 => return Err("raw control byte in string".to_owned()),
                c => out.push(c as char),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        if self.peek()? == b']' {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            v.push(self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        if self.peek()? == b'}' {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            m.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

// ------------------------------------------------------------- schemas

/// The five metrics every workload entry must publish, plus the raw
/// counts behind the waste fraction.
const METRICS: &[&str] =
    &["finite_ilp", "infinite_ilp", "ops_per_vliw", "overhead_per_base_instr", "waste_fraction"];

/// Acceptance: `BENCH_report.json` parses as JSON and carries all five
/// metrics (finite, non-negative numbers) for every workload, plus the
/// geomean block. Runs two real workloads — the same pair CI smokes.
#[test]
fn bench_report_json_schema_holds() {
    let reports: Vec<_> = ["wc", "cmp"]
        .iter()
        .map(|n| report_workload(&daisy_workloads::by_name(n).expect("known workload")).0)
        .collect();
    let text = report_json(&reports);
    let doc = Parser::parse(&text).expect("report output must parse as JSON");

    assert_eq!(doc.get("cache").and_then(Json::str), Some("paper_default"));
    let workloads = doc.get("workloads").and_then(Json::arr).expect("workloads array");
    assert_eq!(workloads.len(), 2);
    for (entry, want_name) in workloads.iter().zip(["wc", "cmp"]) {
        assert_eq!(entry.get("name").and_then(Json::str), Some(want_name));
        let base = entry.get("base_instrs").and_then(Json::num).expect("base_instrs");
        assert!(base > 0.0, "{want_name}: base_instrs must be positive");
        for metric in METRICS {
            let v = entry
                .get(metric)
                .and_then(Json::num)
                .unwrap_or_else(|| panic!("{want_name}: missing metric {metric}"));
            assert!(v >= 0.0, "{want_name}: {metric} = {v} must be non-negative");
        }
        let spec = entry.get("spec_ops").and_then(Json::num).expect("spec_ops");
        let wasted = entry.get("wasted_spec_ops").and_then(Json::num).expect("wasted_spec_ops");
        assert!(wasted <= spec, "{want_name}: wasted > speculative");
    }
    let geomean = doc.get("geomean").expect("geomean block");
    for k in ["finite_ilp", "infinite_ilp"] {
        assert!(geomean.get(k).and_then(Json::num).expect("geomean metric") > 0.0);
    }
}

/// Acceptance: the Chrome export is valid `trace_event` JSON — a
/// `traceEvents` array whose entries all carry `ph`/`pid`/`tid`, with
/// duration events (`ph:"X"`) carrying numeric `ts`/`dur` and instants
/// (`ph:"i"`) a scope — loadable by `chrome://tracing` and Perfetto.
#[test]
fn chrome_trace_is_valid_trace_event_json() {
    let w = daisy_workloads::by_name("cmp").expect("known workload");
    let (_, sys) = report_workload(&w);
    let text = chrome_trace_for(&sys, w.name);
    let doc = Parser::parse(&text).expect("trace must parse as JSON");

    let events = doc.get("traceEvents").and_then(Json::arr).expect("traceEvents array");
    assert!(events.len() > 2, "a completed run must emit dispatch events");
    let mut saw_meta = false;
    let mut saw_duration = false;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::str).expect("every event has ph");
        assert!(ev.get("pid").and_then(Json::num).is_some(), "every event has pid");
        assert!(ev.get("tid").and_then(Json::num).is_some(), "every event has tid");
        match ph {
            "M" => saw_meta = true,
            "X" => {
                saw_duration = true;
                let ts = ev.get("ts").and_then(Json::num).expect("X has ts");
                let dur = ev.get("dur").and_then(Json::num).expect("X has dur");
                assert!(ts >= 0.0 && dur >= 1.0, "dispatch spans are visible");
                let args = ev.get("args").expect("X has args");
                assert!(args.get("entry").and_then(Json::str).is_some());
                assert!(args.get("tier").and_then(Json::str).is_some());
            }
            "i" => {
                assert!(ev.get("ts").and_then(Json::num).is_some(), "instant has ts");
                assert!(ev.get("s").and_then(Json::str).is_some(), "instant has scope");
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(saw_meta, "process_name metadata event present");
    assert!(saw_duration, "at least one dispatch duration event");
}
