//! RV32I (subset) instruction set: decoded form, decoder, and encoder.
//!
//! The subset covers the RV32I base integer instructions the workload
//! suite and the translator need: LUI/AUIPC, JAL/JALR, the six
//! conditional branches, byte/half/word loads and stores, the
//! register-immediate and register-register ALU groups, FENCE (a
//! no-op here), and ECALL/EBREAK/MRET. CSR accesses and everything
//! outside RV32I decode to [`Insn::Invalid`], which the interpreter
//! raises as an illegal-instruction event — the decoder is total, like
//! the PowerPC frontend's.

use std::fmt;

pub use daisy_vliw::op::MemWidth;

/// A guest integer register `x0..x31`. `x0` is architecturally wired
/// to zero: writes are discarded, reads yield 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Xr(pub u8);

impl fmt::Display for Xr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Conditional-branch comparison (the B-type funct3 space).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchCond {
    /// `beq` — equal.
    Eq,
    /// `bne` — not equal.
    Ne,
    /// `blt` — signed less-than.
    Lt,
    /// `bge` — signed greater-or-equal.
    Ge,
    /// `bltu` — unsigned less-than.
    Ltu,
    /// `bgeu` — unsigned greater-or-equal.
    Geu,
}

impl BranchCond {
    fn funct3(self) -> u32 {
        match self {
            BranchCond::Eq => 0,
            BranchCond::Ne => 1,
            BranchCond::Lt => 4,
            BranchCond::Ge => 5,
            BranchCond::Ltu => 6,
            BranchCond::Geu => 7,
        }
    }

    fn name(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }
}

/// Register-immediate ALU operation (OP-IMM funct3, shifts excluded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluImmOp {
    /// `addi`.
    Addi,
    /// `slti` — set if signed less-than immediate.
    Slti,
    /// `sltiu` — set if unsigned less-than (sign-extended) immediate.
    Sltiu,
    /// `xori`.
    Xori,
    /// `ori`.
    Ori,
    /// `andi`.
    Andi,
}

impl AluImmOp {
    fn funct3(self) -> u32 {
        match self {
            AluImmOp::Addi => 0,
            AluImmOp::Slti => 2,
            AluImmOp::Sltiu => 3,
            AluImmOp::Xori => 4,
            AluImmOp::Ori => 6,
            AluImmOp::Andi => 7,
        }
    }

    fn name(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Slti => "slti",
            AluImmOp::Sltiu => "sltiu",
            AluImmOp::Xori => "xori",
            AluImmOp::Ori => "ori",
            AluImmOp::Andi => "andi",
        }
    }
}

/// Shift kind shared by the immediate and register shift forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftOp {
    /// `sll`/`slli` — logical left.
    Sll,
    /// `srl`/`srli` — logical right.
    Srl,
    /// `sra`/`srai` — arithmetic right.
    Sra,
}

impl ShiftOp {
    fn imm_name(self) -> &'static str {
        match self {
            ShiftOp::Sll => "slli",
            ShiftOp::Srl => "srli",
            ShiftOp::Sra => "srai",
        }
    }
}

/// Register-register ALU operation (OP funct3/funct7, shifts excluded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// `add`.
    Add,
    /// `sub`.
    Sub,
    /// `slt` — set if signed less-than.
    Slt,
    /// `sltu` — set if unsigned less-than.
    Sltu,
    /// `xor`.
    Xor,
    /// `or`.
    Or,
    /// `and`.
    And,
}

impl AluOp {
    fn name(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Or => "or",
            AluOp::And => "and",
        }
    }
}

/// A decoded RV32I (subset) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings follow the RISC-V spec formats
pub enum Insn {
    /// `lui rd, imm` — `imm` holds the already-shifted upper value.
    Lui { rd: Xr, imm: u32 },
    /// `auipc rd, imm` — `imm` holds the already-shifted upper value.
    Auipc { rd: Xr, imm: u32 },
    /// `jal rd, off` — `off` is the byte offset from this instruction.
    Jal { rd: Xr, off: i32 },
    /// `jalr rd, off(rs1)`.
    Jalr { rd: Xr, rs1: Xr, off: i16 },
    /// Conditional branch; `off` is the byte offset from this
    /// instruction.
    Branch { cond: BranchCond, rs1: Xr, rs2: Xr, off: i16 },
    /// Load; `unsigned` selects `lbu`/`lhu` (ignored for words).
    Load { rd: Xr, rs1: Xr, off: i16, width: MemWidth, unsigned: bool },
    /// Store.
    Store { rs2: Xr, rs1: Xr, off: i16, width: MemWidth },
    /// Register-immediate ALU.
    OpImm { op: AluImmOp, rd: Xr, rs1: Xr, imm: i16 },
    /// Immediate shift.
    ShiftImm { op: ShiftOp, rd: Xr, rs1: Xr, shamt: u8 },
    /// Register-register ALU.
    Op { op: AluOp, rd: Xr, rs1: Xr, rs2: Xr },
    /// Register shift.
    OpShift { op: ShiftOp, rd: Xr, rs1: Xr, rs2: Xr },
    /// `fence` — a no-op on this single-hart machine.
    Fence,
    /// `ecall`.
    Ecall,
    /// `ebreak`.
    Ebreak,
    /// `mret` — machine-mode trap return.
    Mret,
    /// Any word outside the subset; raises an illegal-instruction
    /// event when executed.
    Invalid(u32),
}

// Opcode (bits 6:0) values of the subset.
mod opc {
    pub const LOAD: u32 = 0x03;
    pub const FENCE: u32 = 0x0F;
    pub const OP_IMM: u32 = 0x13;
    pub const AUIPC: u32 = 0x17;
    pub const STORE: u32 = 0x23;
    pub const OP: u32 = 0x33;
    pub const LUI: u32 = 0x37;
    pub const BRANCH: u32 = 0x63;
    pub const JALR: u32 = 0x67;
    pub const JAL: u32 = 0x6F;
    pub const SYSTEM: u32 = 0x73;
}

fn rd_of(w: u32) -> Xr {
    Xr(((w >> 7) & 0x1F) as u8)
}

fn rs1_of(w: u32) -> Xr {
    Xr(((w >> 15) & 0x1F) as u8)
}

fn rs2_of(w: u32) -> Xr {
    Xr(((w >> 20) & 0x1F) as u8)
}

/// Sign-extended 12-bit I-type immediate (bits 31:20).
fn imm_i(w: u32) -> i16 {
    ((w as i32) >> 20) as i16
}

/// Sign-extended 12-bit S-type immediate.
fn imm_s(w: u32) -> i16 {
    let v = ((w >> 25) << 5) | ((w >> 7) & 0x1F);
    ((v << 20) as i32 >> 20) as i16
}

/// Sign-extended 13-bit B-type immediate (bit 0 is zero).
fn imm_b(w: u32) -> i16 {
    let v = ((w >> 31) << 12)
        | (((w >> 7) & 1) << 11)
        | (((w >> 25) & 0x3F) << 5)
        | (((w >> 8) & 0xF) << 1);
    ((v << 19) as i32 >> 19) as i16
}

/// Sign-extended 21-bit J-type immediate (bit 0 is zero).
fn imm_j(w: u32) -> i32 {
    let v = ((w >> 31) << 20)
        | (((w >> 12) & 0xFF) << 12)
        | (((w >> 20) & 1) << 11)
        | (((w >> 21) & 0x3FF) << 1);
    (v << 11) as i32 >> 11
}

/// Decodes one instruction word. Total: words outside the subset
/// return [`Insn::Invalid`].
#[allow(clippy::too_many_lines)]
pub fn decode(w: u32) -> Insn {
    let funct3 = (w >> 12) & 7;
    let funct7 = w >> 25;
    match w & 0x7F {
        opc::LUI => Insn::Lui { rd: rd_of(w), imm: w & 0xFFFF_F000 },
        opc::AUIPC => Insn::Auipc { rd: rd_of(w), imm: w & 0xFFFF_F000 },
        opc::JAL => Insn::Jal { rd: rd_of(w), off: imm_j(w) },
        opc::JALR if funct3 == 0 => Insn::Jalr { rd: rd_of(w), rs1: rs1_of(w), off: imm_i(w) },
        opc::BRANCH => {
            let cond = match funct3 {
                0 => BranchCond::Eq,
                1 => BranchCond::Ne,
                4 => BranchCond::Lt,
                5 => BranchCond::Ge,
                6 => BranchCond::Ltu,
                7 => BranchCond::Geu,
                _ => return Insn::Invalid(w),
            };
            Insn::Branch { cond, rs1: rs1_of(w), rs2: rs2_of(w), off: imm_b(w) }
        }
        opc::LOAD => {
            let (width, unsigned) = match funct3 {
                0 => (MemWidth::Byte, false),
                1 => (MemWidth::Half, false),
                2 => (MemWidth::Word, false),
                4 => (MemWidth::Byte, true),
                5 => (MemWidth::Half, true),
                _ => return Insn::Invalid(w),
            };
            Insn::Load { rd: rd_of(w), rs1: rs1_of(w), off: imm_i(w), width, unsigned }
        }
        opc::STORE => {
            let width = match funct3 {
                0 => MemWidth::Byte,
                1 => MemWidth::Half,
                2 => MemWidth::Word,
                _ => return Insn::Invalid(w),
            };
            Insn::Store { rs2: rs2_of(w), rs1: rs1_of(w), off: imm_s(w), width }
        }
        opc::OP_IMM => match funct3 {
            1 | 5 => {
                let op = match (funct3, funct7) {
                    (1, 0x00) => ShiftOp::Sll,
                    (5, 0x00) => ShiftOp::Srl,
                    (5, 0x20) => ShiftOp::Sra,
                    _ => return Insn::Invalid(w),
                };
                Insn::ShiftImm { op, rd: rd_of(w), rs1: rs1_of(w), shamt: rs2_of(w).0 }
            }
            _ => {
                let op = match funct3 {
                    0 => AluImmOp::Addi,
                    2 => AluImmOp::Slti,
                    3 => AluImmOp::Sltiu,
                    4 => AluImmOp::Xori,
                    6 => AluImmOp::Ori,
                    7 => AluImmOp::Andi,
                    _ => return Insn::Invalid(w),
                };
                Insn::OpImm { op, rd: rd_of(w), rs1: rs1_of(w), imm: imm_i(w) }
            }
        },
        opc::OP => {
            let (rd, rs1, rs2) = (rd_of(w), rs1_of(w), rs2_of(w));
            match (funct3, funct7) {
                (0, 0x00) => Insn::Op { op: AluOp::Add, rd, rs1, rs2 },
                (0, 0x20) => Insn::Op { op: AluOp::Sub, rd, rs1, rs2 },
                (1, 0x00) => Insn::OpShift { op: ShiftOp::Sll, rd, rs1, rs2 },
                (2, 0x00) => Insn::Op { op: AluOp::Slt, rd, rs1, rs2 },
                (3, 0x00) => Insn::Op { op: AluOp::Sltu, rd, rs1, rs2 },
                (4, 0x00) => Insn::Op { op: AluOp::Xor, rd, rs1, rs2 },
                (5, 0x00) => Insn::OpShift { op: ShiftOp::Srl, rd, rs1, rs2 },
                (5, 0x20) => Insn::OpShift { op: ShiftOp::Sra, rd, rs1, rs2 },
                (6, 0x00) => Insn::Op { op: AluOp::Or, rd, rs1, rs2 },
                (7, 0x00) => Insn::Op { op: AluOp::And, rd, rs1, rs2 },
                _ => Insn::Invalid(w),
            }
        }
        opc::FENCE if funct3 == 0 => Insn::Fence,
        opc::SYSTEM if funct3 == 0 && rd_of(w).0 == 0 && rs1_of(w).0 == 0 => match w >> 20 {
            0x000 => Insn::Ecall,
            0x001 => Insn::Ebreak,
            0x302 => Insn::Mret,
            _ => Insn::Invalid(w),
        },
        _ => Insn::Invalid(w),
    }
}

fn enc_r(funct7: u32, rs2: Xr, rs1: Xr, funct3: u32, rd: Xr, opcode: u32) -> u32 {
    (funct7 << 25)
        | (u32::from(rs2.0) << 20)
        | (u32::from(rs1.0) << 15)
        | (funct3 << 12)
        | (u32::from(rd.0) << 7)
        | opcode
}

fn enc_i(imm: i16, rs1: Xr, funct3: u32, rd: Xr, opcode: u32) -> u32 {
    ((imm as u32 & 0xFFF) << 20)
        | (u32::from(rs1.0) << 15)
        | (funct3 << 12)
        | (u32::from(rd.0) << 7)
        | opcode
}

fn enc_s(imm: i16, rs2: Xr, rs1: Xr, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32 & 0xFFF;
    ((imm >> 5) << 25)
        | (u32::from(rs2.0) << 20)
        | (u32::from(rs1.0) << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
}

fn enc_b(off: i16, rs2: Xr, rs1: Xr, funct3: u32, opcode: u32) -> u32 {
    let imm = off as u32 & 0x1FFF;
    ((imm >> 12) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (u32::from(rs2.0) << 20)
        | (u32::from(rs1.0) << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 1) << 7)
        | opcode
}

fn enc_j(off: i32, rd: Xr, opcode: u32) -> u32 {
    let imm = off as u32 & 0x1F_FFFF;
    ((imm >> 20) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | (u32::from(rd.0) << 7)
        | opcode
}

/// Encodes an instruction back to its word.
///
/// # Panics
///
/// Panics if an immediate is out of its encoding range (the assembler
/// range-checks before encoding).
pub fn encode(insn: &Insn) -> u32 {
    match *insn {
        Insn::Lui { rd, imm } => imm | (u32::from(rd.0) << 7) | opc::LUI,
        Insn::Auipc { rd, imm } => imm | (u32::from(rd.0) << 7) | opc::AUIPC,
        Insn::Jal { rd, off } => enc_j(off, rd, opc::JAL),
        Insn::Jalr { rd, rs1, off } => enc_i(off, rs1, 0, rd, opc::JALR),
        Insn::Branch { cond, rs1, rs2, off } => enc_b(off, rs2, rs1, cond.funct3(), opc::BRANCH),
        Insn::Load { rd, rs1, off, width, unsigned } => {
            let funct3 = match (width, unsigned) {
                (MemWidth::Byte, false) => 0,
                (MemWidth::Half, false) => 1,
                (MemWidth::Word, _) => 2,
                (MemWidth::Byte, true) => 4,
                (MemWidth::Half, true) => 5,
            };
            enc_i(off, rs1, funct3, rd, opc::LOAD)
        }
        Insn::Store { rs2, rs1, off, width } => {
            let funct3 = match width {
                MemWidth::Byte => 0,
                MemWidth::Half => 1,
                MemWidth::Word => 2,
            };
            enc_s(off, rs2, rs1, funct3, opc::STORE)
        }
        Insn::OpImm { op, rd, rs1, imm } => enc_i(imm, rs1, op.funct3(), rd, opc::OP_IMM),
        Insn::ShiftImm { op, rd, rs1, shamt } => {
            let (funct3, funct7) = match op {
                ShiftOp::Sll => (1, 0x00),
                ShiftOp::Srl => (5, 0x00),
                ShiftOp::Sra => (5, 0x20),
            };
            enc_r(funct7, Xr(shamt), rs1, funct3, rd, opc::OP_IMM)
        }
        Insn::Op { op, rd, rs1, rs2 } => {
            let (funct3, funct7) = match op {
                AluOp::Add => (0, 0x00),
                AluOp::Sub => (0, 0x20),
                AluOp::Slt => (2, 0x00),
                AluOp::Sltu => (3, 0x00),
                AluOp::Xor => (4, 0x00),
                AluOp::Or => (6, 0x00),
                AluOp::And => (7, 0x00),
            };
            enc_r(funct7, rs2, rs1, funct3, rd, opc::OP)
        }
        Insn::OpShift { op, rd, rs1, rs2 } => {
            let (funct3, funct7) = match op {
                ShiftOp::Sll => (1, 0x00),
                ShiftOp::Srl => (5, 0x00),
                ShiftOp::Sra => (5, 0x20),
            };
            enc_r(funct7, rs2, rs1, funct3, rd, opc::OP)
        }
        Insn::Fence => 0x0000_000F,
        Insn::Ecall => 0x0000_0073,
        Insn::Ebreak => 0x0010_0073,
        Insn::Mret => 0x3020_0073,
        Insn::Invalid(w) => w,
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Insn::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", imm >> 12),
            Insn::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", imm >> 12),
            Insn::Jal { rd, off } => write!(f, "jal {rd}, {off}"),
            Insn::Jalr { rd, rs1, off } => write!(f, "jalr {rd}, {off}({rs1})"),
            Insn::Branch { cond, rs1, rs2, off } => {
                write!(f, "{} {rs1}, {rs2}, {off}", cond.name())
            }
            Insn::Load { rd, rs1, off, width, unsigned } => {
                let m = match (width, unsigned) {
                    (MemWidth::Byte, false) => "lb",
                    (MemWidth::Half, false) => "lh",
                    (MemWidth::Word, _) => "lw",
                    (MemWidth::Byte, true) => "lbu",
                    (MemWidth::Half, true) => "lhu",
                };
                write!(f, "{m} {rd}, {off}({rs1})")
            }
            Insn::Store { rs2, rs1, off, width } => {
                let m = match width {
                    MemWidth::Byte => "sb",
                    MemWidth::Half => "sh",
                    MemWidth::Word => "sw",
                };
                write!(f, "{m} {rs2}, {off}({rs1})")
            }
            Insn::OpImm { op, rd, rs1, imm } => write!(f, "{} {rd}, {rs1}, {imm}", op.name()),
            Insn::ShiftImm { op, rd, rs1, shamt } => {
                write!(f, "{} {rd}, {rs1}, {shamt}", op.imm_name())
            }
            Insn::Op { op, rd, rs1, rs2 } => write!(f, "{} {rd}, {rs1}, {rs2}", op.name()),
            Insn::OpShift { op, rd, rs1, rs2 } => {
                let m = match op {
                    ShiftOp::Sll => "sll",
                    ShiftOp::Srl => "srl",
                    ShiftOp::Sra => "sra",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}")
            }
            Insn::Fence => write!(f, "fence"),
            Insn::Ecall => write!(f, "ecall"),
            Insn::Ebreak => write!(f, "ebreak"),
            Insn::Mret => write!(f, "mret"),
            Insn::Invalid(w) => write!(f, ".word {w:#010x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_representative_encodings() {
        let cases = [
            Insn::Lui { rd: Xr(5), imm: 0xDEAD_B000 },
            Insn::Auipc { rd: Xr(31), imm: 0x0000_1000 },
            Insn::Jal { rd: Xr(1), off: -2048 },
            Insn::Jal { rd: Xr(0), off: 0xF_FFFE },
            Insn::Jalr { rd: Xr(1), rs1: Xr(2), off: -4 },
            Insn::Branch { cond: BranchCond::Geu, rs1: Xr(3), rs2: Xr(4), off: -4096 },
            Insn::Branch { cond: BranchCond::Eq, rs1: Xr(3), rs2: Xr(4), off: 4094 },
            Insn::Load { rd: Xr(7), rs1: Xr(8), off: -1, width: MemWidth::Half, unsigned: true },
            Insn::Store { rs2: Xr(9), rs1: Xr(10), off: 2047, width: MemWidth::Word },
            Insn::OpImm { op: AluImmOp::Sltiu, rd: Xr(11), rs1: Xr(12), imm: -2048 },
            Insn::ShiftImm { op: ShiftOp::Sra, rd: Xr(13), rs1: Xr(14), shamt: 31 },
            Insn::Op { op: AluOp::Sub, rd: Xr(15), rs1: Xr(16), rs2: Xr(17) },
            Insn::OpShift { op: ShiftOp::Sll, rd: Xr(18), rs1: Xr(19), rs2: Xr(20) },
            Insn::Fence,
            Insn::Ecall,
            Insn::Ebreak,
            Insn::Mret,
        ];
        for insn in cases {
            assert_eq!(decode(encode(&insn)), insn, "{insn}");
        }
    }

    #[test]
    fn known_words_decode() {
        // addi x10, x0, 42
        assert_eq!(
            decode(0x02A0_0513),
            Insn::OpImm { op: AluImmOp::Addi, rd: Xr(10), rs1: Xr(0), imm: 42 }
        );
        // sw x2, 8(x1)
        assert_eq!(
            decode(0x0020_A423),
            Insn::Store { rs2: Xr(2), rs1: Xr(1), off: 8, width: MemWidth::Word }
        );
        assert_eq!(decode(0x3020_0073), Insn::Mret);
    }

    #[test]
    fn unknown_words_are_invalid() {
        for w in [0x0000_0000, 0xFFFF_FFFF, 0x0000_001F, 0x0000_3073] {
            assert!(matches!(decode(w), Insn::Invalid(_)), "{w:#x}");
        }
    }
}
