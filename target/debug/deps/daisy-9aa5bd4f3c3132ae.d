/root/repo/target/debug/deps/daisy-9aa5bd4f3c3132ae.d: crates/core/src/lib.rs crates/core/src/convert.rs crates/core/src/engine.rs crates/core/src/oracle.rs crates/core/src/overhead.rs crates/core/src/precise.rs crates/core/src/sched.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/trace.rs crates/core/src/vmm.rs Cargo.toml

/root/repo/target/debug/deps/libdaisy-9aa5bd4f3c3132ae.rmeta: crates/core/src/lib.rs crates/core/src/convert.rs crates/core/src/engine.rs crates/core/src/oracle.rs crates/core/src/overhead.rs crates/core/src/precise.rs crates/core/src/sched.rs crates/core/src/stats.rs crates/core/src/system.rs crates/core/src/trace.rs crates/core/src/vmm.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/convert.rs:
crates/core/src/engine.rs:
crates/core/src/oracle.rs:
crates/core/src/overhead.rs:
crates/core/src/precise.rs:
crates/core/src/sched.rs:
crates/core/src/stats.rs:
crates/core/src/system.rs:
crates/core/src/trace.rs:
crates/core/src/vmm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
