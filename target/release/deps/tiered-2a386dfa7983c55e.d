/root/repo/target/release/deps/tiered-2a386dfa7983c55e.d: tests/tiered.rs

/root/repo/target/release/deps/tiered-2a386dfa7983c55e: tests/tiered.rs

tests/tiered.rs:
