//! Per-ISA memoization of instruction decoding.

use crate::IsaId;

/// Memoizes decode results per instruction-word address, salted by the
/// owning guest's [`IsaId`].
///
/// The interpreter hot loops (trace generation, interpretive
/// compilation's interpret-ahead) revisit the same words millions of
/// times; decode is a pure function of the word, so its result can be
/// reused. The cache is direct-mapped by word offset, and each entry
/// remembers the raw word it decoded: a store that rewrites an
/// instruction in place changes the word, the comparison on the next
/// fetch misses, and the entry is re-decoded — self-invalidation
/// without any store-side hook.
///
/// The ISA salt perturbs the slot index so a multi-guest server that
/// (incorrectly) shared one cache across frontends could never return a
/// PowerPC decode for an RV32 fetch of the same address: entries are
/// additionally typed by the instruction type parameter, making such
/// sharing a compile error in the first place.
#[derive(Debug, Clone)]
pub struct DecodeCache<Ins: Copy> {
    entries: Vec<DecodeEntry<Ins>>,
    mask: usize,
    salt: usize,
}

#[derive(Debug, Clone, Copy)]
struct DecodeEntry<Ins> {
    addr: u32,
    word: u32,
    insn: Option<Ins>,
}

impl<Ins: Copy> DecodeCache<Ins> {
    /// Default number of slots; covers an 8 KiB working set of code.
    const DEFAULT_SLOTS: usize = 2048;

    /// Creates a cache with the default slot count for guest `isa`.
    pub fn new(isa: IsaId) -> DecodeCache<Ins> {
        DecodeCache::with_slots(isa, Self::DEFAULT_SLOTS)
    }

    /// Creates a cache with at least `slots` entries (rounded up to a
    /// power of two).
    pub fn with_slots(isa: IsaId, slots: usize) -> DecodeCache<Ins> {
        let slots = slots.next_power_of_two().max(16);
        DecodeCache {
            entries: vec![DecodeEntry { addr: u32::MAX, word: 0, insn: None }; slots],
            mask: slots - 1,
            // Knuth multiplicative spread of the ISA id, so different
            // guests' entries for the same address land in different
            // slots even if a cache were (wrongly) shared.
            salt: (isa.0 as usize).wrapping_mul(0x9E37_79B9),
        }
    }

    /// Decodes the instruction `word` fetched from `addr` via `decode`,
    /// reusing the cached result when the same word is still at that
    /// address.
    pub fn decode_at(&mut self, addr: u32, word: u32, decode: impl FnOnce(u32) -> Ins) -> Ins {
        let e = &mut self.entries[(((addr >> 2) as usize) ^ self.salt) & self.mask];
        if e.addr == addr && e.word == word {
            if let Some(insn) = e.insn {
                return insn;
            }
        }
        let insn = decode(word);
        *e = DecodeEntry { addr, word, insn: Some(insn) };
        insn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn caches_by_address_and_word() {
        let calls = Cell::new(0u32);
        let dec = |w: u32| {
            calls.set(calls.get() + 1);
            w.wrapping_mul(3)
        };
        let mut c: DecodeCache<u32> = DecodeCache::with_slots(IsaId::PPC, 16);
        assert_eq!(c.decode_at(0x100, 7, dec), 21);
        assert_eq!(c.decode_at(0x100, 7, dec), 21);
        assert_eq!(calls.get(), 1);
        // Same address, new word (self-modifying code): re-decoded.
        assert_eq!(c.decode_at(0x100, 9, dec), 27);
        assert_eq!(calls.get(), 2);
    }

    #[test]
    fn salt_differs_across_isas() {
        let a: DecodeCache<u32> = DecodeCache::new(IsaId::PPC);
        let b: DecodeCache<u32> = DecodeCache::new(IsaId::RV32);
        assert_ne!(a.salt, b.salt);
    }
}
