//! A small, self-contained subset of the [proptest](https://docs.rs/proptest)
//! API, used so this workspace builds and tests in environments with no
//! access to crates.io.
//!
//! Behavioural differences from the real crate, all deliberate:
//!
//! * generation is deterministic per test (seeded from the test's name),
//!   so runs are reproducible without a persistence file;
//! * failing cases are **not shrunk** — the failing inputs are printed
//!   verbatim instead;
//! * `proptest-regressions` files are ignored;
//! * strategies implement only what this repository's tests use: integer
//!   ranges, `any` for primitives, `Just`, tuples, `prop_map`,
//!   `prop_oneof!`, and `prop::collection::vec`.
//!
//! The number of cases per test defaults to 256 and can be overridden
//! with `ProptestConfig::with_cases` or the `PROPTEST_CASES` environment
//! variable.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glue that `use proptest::prelude::*` is expected to provide.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced re-exports (`prop::collection::vec(..)` style).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests.
///
/// Accepts an optional `#![proptest_config(..)]` header followed by
/// `#[test] fn name(binding in strategy, ...) { body }` items, exactly
/// like the real crate.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __cases = __config.effective_cases();
            for __case in 0..__cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                // Render the inputs up front: the body may move them,
                // so the failure reporter owns a preformatted string.
                let __inputs = ::std::string::String::new();
                $(let __inputs = format!(
                    "{}    {} = {:?}\n", __inputs, stringify!($arg), &$arg
                );)+
                let __reporter = $crate::test_runner::PanicReporter::new(move || {
                    eprintln!(
                        "proptest: {} failed at case {}/{} with inputs:\n{}",
                        stringify!($name), __case, __cases, __inputs
                    );
                });
                $body
                ::std::mem::forget(__reporter);
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Picks one of several strategies (uniformly) per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
