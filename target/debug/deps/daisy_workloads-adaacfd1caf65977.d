/root/repo/target/debug/deps/daisy_workloads-adaacfd1caf65977.d: crates/workloads/src/lib.rs crates/workloads/src/cmp.rs crates/workloads/src/compress.rs crates/workloads/src/fgrep.rs crates/workloads/src/hist.rs crates/workloads/src/lex.rs crates/workloads/src/sieve.rs crates/workloads/src/sort.rs crates/workloads/src/wc.rs crates/workloads/src/xlat.rs

/root/repo/target/debug/deps/libdaisy_workloads-adaacfd1caf65977.rmeta: crates/workloads/src/lib.rs crates/workloads/src/cmp.rs crates/workloads/src/compress.rs crates/workloads/src/fgrep.rs crates/workloads/src/hist.rs crates/workloads/src/lex.rs crates/workloads/src/sieve.rs crates/workloads/src/sort.rs crates/workloads/src/wc.rs crates/workloads/src/xlat.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cmp.rs:
crates/workloads/src/compress.rs:
crates/workloads/src/fgrep.rs:
crates/workloads/src/hist.rs:
crates/workloads/src/lex.rs:
crates/workloads/src/sieve.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/wc.rs:
crates/workloads/src/xlat.rs:
