/root/repo/target/debug/deps/repro-386fc09e7ddd3c61.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-386fc09e7ddd3c61: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
