//! PowerPC (subset) base-architecture substrate for the DAISY reproduction.
//!
//! DAISY emulates an existing "base architecture" — in the paper and here,
//! the 32-bit PowerPC. This crate provides everything the reproduction
//! needs from that base architecture, built from scratch:
//!
//! * [`insn`] — the instruction set as a typed enum,
//! * [`mod@encode`]/[`mod@decode`] — bit-exact 32-bit PowerPC encodings,
//! * [`asm`] — a label-based assembler / program builder used to write
//!   the benchmark workloads,
//! * [`parse`] — a textual assembly front end over the builder,
//! * [`interp`] — a reference interpreter with full architected state
//!   (GPRs, CR, LR, CTR, XER, MSR, SRR0/1, DAR, DSISR) that defines the
//!   semantics DAISY must preserve and generates execution traces,
//! * [`mem`] — emulated physical memory with the per-page *read-only
//!   (translated)* bits of paper §3.2 used to detect self-modifying code.
//!
//! # Example
//!
//! ```
//! use daisy_ppc::asm::Asm;
//! use daisy_ppc::interp::{Cpu, StopReason};
//! use daisy_ppc::mem::Memory;
//! use daisy_ppc::reg::Gpr;
//!
//! // r3 = 6 * 7, then exit via sc.
//! let mut a = Asm::new(0x1000);
//! a.li(Gpr(4), 6);
//! a.li(Gpr(5), 7);
//! a.mullw(Gpr(3), Gpr(4), Gpr(5));
//! a.sc();
//! let prog = a.finish().unwrap();
//!
//! let mut mem = Memory::new(0x10000);
//! prog.load_into(&mut mem).unwrap();
//! let mut cpu = Cpu::new(prog.entry);
//! let stop = cpu.run(&mut mem, 1_000).unwrap();
//! assert_eq!(stop, StopReason::Syscall);
//! assert_eq!(cpu.gpr[3], 42);
//! ```

pub mod asm;
pub mod convert;
pub mod decode;
pub mod encode;
pub mod frontend;
pub mod insn;
pub mod interp;
pub use daisy_isa::mem;
pub mod parse;
pub mod reg;

pub use asm::{Asm, Program};
pub use decode::decode;
pub use encode::encode;
pub use frontend::PpcIsa;
pub use insn::Insn;
pub use interp::Cpu;
pub use mem::Memory;
pub use reg::{CrBit, CrField, Gpr, Spr};

/// Size of a base-architecture page in bytes (PowerPC uses 4 KiB; the
/// shared value lives at the frontend boundary).
pub use daisy_isa::PAGE_SIZE;

/// PowerPC exception vector offsets (real addresses), per the paper's §3.3.
pub mod vectors {
    /// System reset.
    pub const RESET: u32 = 0x100;
    /// Data storage interrupt (page fault on data access).
    pub const DSI: u32 = 0x300;
    /// Instruction storage interrupt.
    pub const ISI: u32 = 0x400;
    /// External interrupt.
    pub const EXTERNAL: u32 = 0x500;
    /// Alignment interrupt.
    pub const ALIGNMENT: u32 = 0x600;
    /// Program interrupt (trap, illegal, privileged).
    pub const PROGRAM: u32 = 0x700;
    /// System call.
    pub const SYSCALL: u32 = 0xC00;
}
