//! Cross-validation of the translator's RISC-primitive semantics
//! against the reference interpreter, instruction by instruction.
//!
//! For random computational instructions and random register state,
//! executing the instruction on the interpreter and executing its
//! converted primitive sequence through `daisy_vliw::op::eval` must
//! produce identical architected state. This pins the two semantic
//! definitions (interpreter `execute` vs translator `convert`+`eval`)
//! to each other — any drift in either is a miscompilation waiting to
//! happen.

use daisy_isa::convert::Flow;
use daisy_isa::GuestCpu;
use daisy_ppc::convert::convert;
use daisy_ppc::insn::{Arith2Op, ArithOp, Insn, LogicImmOp, LogicOp, ShiftOp, UnaryOp};
use daisy_ppc::interp::{Cpu, Event};
use daisy_ppc::mem::Memory;
use daisy_ppc::reg::{CrBit, CrField, Gpr};
use daisy_vliw::op::{eval, EvalOut};
use daisy_vliw::regfile::RegFile;
use proptest::prelude::*;

fn gpr() -> impl Strategy<Value = Gpr> {
    (0u8..32).prop_map(Gpr)
}

fn crf() -> impl Strategy<Value = CrField> {
    (0u8..8).prop_map(CrField)
}

/// Computational instructions: no memory, no branches, no privilege.
fn comp_insn() -> impl Strategy<Value = Insn> {
    let arith = prop_oneof![
        Just(ArithOp::Add),
        Just(ArithOp::Addc),
        Just(ArithOp::Adde),
        Just(ArithOp::Subf),
        Just(ArithOp::Subfc),
        Just(ArithOp::Subfe),
        Just(ArithOp::Mullw),
        Just(ArithOp::Mulhw),
        Just(ArithOp::Mulhwu),
        Just(ArithOp::Divw),
        Just(ArithOp::Divwu),
    ];
    let logic = prop_oneof![
        Just(LogicOp::And),
        Just(LogicOp::Or),
        Just(LogicOp::Xor),
        Just(LogicOp::Nand),
        Just(LogicOp::Nor),
        Just(LogicOp::Andc),
        Just(LogicOp::Orc),
        Just(LogicOp::Eqv),
    ];
    prop_oneof![
        (arith, gpr(), gpr(), gpr(), any::<bool>()).prop_map(|(op, rt, ra, rb, rc)| Insn::Arith {
            op,
            rt,
            ra,
            rb,
            oe: false,
            rc
        }),
        (gpr(), gpr(), any::<bool>()).prop_map(|(rt, ra, rc)| Insn::Arith2 {
            op: Arith2Op::Addze,
            rt,
            ra,
            oe: false,
            rc
        }),
        (gpr(), gpr(), any::<bool>()).prop_map(|(rt, ra, rc)| Insn::Arith2 {
            op: Arith2Op::Subfme,
            rt,
            ra,
            oe: false,
            rc
        }),
        (logic, gpr(), gpr(), gpr(), any::<bool>()).prop_map(|(op, ra, rs, rb, rc)| Insn::Logic {
            op,
            ra,
            rs,
            rb,
            rc
        }),
        (gpr(), gpr(), any::<i16>(), any::<bool>()).prop_map(|(rt, ra, si, rc)| Insn::Addic {
            rt,
            ra,
            si,
            rc
        }),
        (gpr(), gpr(), any::<i16>()).prop_map(|(rt, ra, si)| Insn::Subfic { rt, ra, si }),
        (gpr(), gpr(), any::<i16>()).prop_map(|(rt, ra, si)| Insn::Mulli { rt, ra, si }),
        (gpr(), gpr(), any::<u16>()).prop_map(|(ra, rs, ui)| Insn::LogicImm {
            op: LogicImmOp::Andis,
            ra,
            rs,
            ui
        }),
        (gpr(), gpr(), gpr(), any::<bool>()).prop_map(|(ra, rs, rb, rc)| Insn::Shift {
            op: ShiftOp::Sraw,
            ra,
            rs,
            rb,
            rc
        }),
        (gpr(), gpr(), gpr(), any::<bool>()).prop_map(|(ra, rs, rb, rc)| Insn::Shift {
            op: ShiftOp::Slw,
            ra,
            rs,
            rb,
            rc
        }),
        (gpr(), gpr(), 0u8..32, any::<bool>()).prop_map(|(ra, rs, sh, rc)| Insn::Srawi {
            ra,
            rs,
            sh,
            rc
        }),
        (gpr(), gpr(), 0u8..32, 0u8..32, 0u8..32, any::<bool>())
            .prop_map(|(ra, rs, sh, mb, me, rc)| Insn::Rlwinm { ra, rs, sh, mb, me, rc }),
        (gpr(), gpr(), 0u8..32, 0u8..32, 0u8..32, any::<bool>())
            .prop_map(|(ra, rs, sh, mb, me, rc)| Insn::Rlwimi { ra, rs, sh, mb, me, rc }),
        (gpr(), gpr(), any::<bool>()).prop_map(|(ra, rs, rc)| Insn::Unary {
            op: UnaryOp::Cntlzw,
            ra,
            rs,
            rc
        }),
        (gpr(), gpr(), any::<bool>()).prop_map(|(ra, rs, rc)| Insn::Unary {
            op: UnaryOp::Extsb,
            ra,
            rs,
            rc
        }),
        (crf(), any::<bool>(), gpr(), gpr()).prop_map(|(bf, signed, ra, rb)| Insn::Cmp {
            bf,
            signed,
            ra,
            rb
        }),
        (crf(), gpr(), any::<i16>()).prop_map(|(bf, ra, si)| Insn::CmpImm {
            bf,
            signed: true,
            ra,
            imm: i32::from(si)
        }),
        ((0u8..32), (0u8..32), (0u8..32)).prop_map(|(bt, ba, bb)| Insn::CrLogic {
            op: daisy_ppc::insn::CrOp::Nand,
            bt: CrBit(bt),
            ba: CrBit(ba),
            bb: CrBit(bb),
        }),
        (crf(), crf()).prop_map(|(bf, bfa)| Insn::Mcrf { bf, bfa }),
        gpr().prop_map(|rt| Insn::Mfcr { rt }),
        (any::<u8>(), gpr()).prop_map(|(fxm, rs)| Insn::Mtcrf { fxm, rs }),
        gpr().prop_map(|rt| Insn::Mfspr { rt, spr: daisy_ppc::reg::Spr::Xer }),
        gpr().prop_map(|rs| Insn::Mtspr { spr: daisy_ppc::reg::Spr::Xer, rs }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// interpreter(insn) == eval(convert(insn)) on every computational
    /// instruction and state.
    #[test]
    fn converted_primitives_match_interpreter(
        insn in comp_insn(),
        gprs in prop::collection::vec(any::<u32>(), 32),
        cr in any::<u32>(),
        xer_bits in 0u32..8,
    ) {
        // Interpreter side.
        let mut cpu = Cpu::new(0x1000);
        for (i, v) in gprs.iter().enumerate() {
            cpu.gpr[i] = *v;
        }
        cpu.cr = cr;
        cpu.xer = xer_bits << 29; // CA/OV/SO
        let mut mem = Memory::new(0x2000);
        let cpu_before = cpu.clone();
        let ev = cpu.execute(&mut mem, insn);
        prop_assert_eq!(ev, Event::Continue);

        // Primitive side: evaluate the converted ops in sequence over a
        // unified register file seeded with the same state.
        let conv = convert(&insn, 0x1000);
        prop_assert_eq!(conv.flow, Flow::Fall, "computational insns fall through");
        let mut rf = RegFile::new();
        cpu_before.fill_regfile(&mut rf);
        for op in &conv.ops {
            let vals: Vec<u32> = op.srcs().iter().map(|s| rf.get(*s)).collect();
            match eval(op, &vals) {
                EvalOut::Value { v, carry } => {
                    if let Some(d) = op.dest {
                        rf.set(d, v);
                    }
                    if let Some(d2) = op.dest2 {
                        rf.set(d2, u32::from(carry.unwrap_or(false)));
                    }
                }
                other => prop_assert!(false, "unexpected eval result {other:?}"),
            }
        }
        let mut cpu_via_ops = cpu_before.clone();
        cpu_via_ops.write_back(&rf);

        prop_assert_eq!(cpu_via_ops.gpr, cpu.gpr, "GPRs for {}", insn);
        prop_assert_eq!(cpu_via_ops.cr, cpu.cr, "CR for {}", insn);
        prop_assert_eq!(cpu_via_ops.xer, cpu.xer, "XER for {}", insn);
        prop_assert_eq!(cpu_via_ops.lr, cpu.lr, "LR for {}", insn);
        prop_assert_eq!(cpu_via_ops.ctr, cpu.ctr, "CTR for {}", insn);
    }
}
