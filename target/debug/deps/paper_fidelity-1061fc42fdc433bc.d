/root/repo/target/debug/deps/paper_fidelity-1061fc42fdc433bc.d: crates/core/tests/paper_fidelity.rs

/root/repo/target/debug/deps/paper_fidelity-1061fc42fdc433bc: crates/core/tests/paper_fidelity.rs

crates/core/tests/paper_fidelity.rs:
