//! Precise-exception address recovery (paper §3.5).
//!
//! When translated code takes an exception, the VMM must report the
//! *base-architecture* instruction responsible. The paper's table-free
//! scheme: walk from the group's entry point (whose correspondence with
//! a base address is exact), and match, in order, the translated code's
//! **assignments to architected resources** — architected register
//! writes, stores, conditional-branch directions — against the base
//! instruction stream. Because DAISY commits architected state in
//! original program order, the two sequences correspond one-to-one, and
//! the base instruction at which the match reaches the faulting parcel
//! is the offender.
//!
//! The execution engine records an [`ArchEvent`] for every architected
//! commitment; [`recover`] replays base instructions against that
//! record. (The engine also carries each parcel's originating address as
//! metadata — the tests cross-check the recovered address against it,
//! validating the paper's claim that no side tables are needed.)

use daisy_isa::convert::Flow;
use daisy_isa::mem::Memory;
use daisy_isa::Isa;
use daisy_vliw::op::OpKind;
use daisy_vliw::reg::Reg;

/// One architected commitment observed while executing translated code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchEvent {
    /// A write to one or two architected registers (an in-order op may
    /// carry a carry-out; renamed results commit one register at a time).
    Def {
        /// Primary destination.
        d1: Reg,
        /// Carry-out destination, for single-parcel in-order ops.
        d2: Option<Reg>,
    },
    /// A store to memory.
    Store,
    /// A trap-condition check (executed, whether or not it fired).
    TrapCheck,
    /// A conditional branch resolved in this direction.
    Dir(bool),
    /// An indirect branch resolved through a Ch. 6 specialization
    /// check: `Some(T)` when execution continued inline at `T`, `None`
    /// when the true indirect exit was taken.
    IndirectDir(Option<u32>),
}

/// The expected architected commitments of one base instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Expected {
    /// One or two registers defined — matches either a single fused
    /// event or two consecutive single-register commits.
    DefGroup(Reg, Option<Reg>),
    Store,
    TrapCheck,
}

/// Failure to recover (indicates a translator invariant was broken).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoverError {
    /// Human-readable mismatch description.
    pub message: String,
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "precise-exception recovery failed: {}", self.message)
    }
}

impl std::error::Error for RecoverError {}

fn expected_of<I: Isa>(mem: &Memory, addr: u32) -> (Vec<Expected>, Flow, bool) {
    let word = mem.read_u32(addr).unwrap_or(0);
    let conv = match I::decode(word) {
        Ok(insn) => I::convert(&insn, addr),
        Err(_) => daisy_isa::convert::Converted::interp(),
    };
    let mut exp = Vec::new();
    let n = conv.ops.len();
    let cond_compare = matches!(
        conv.flow,
        Flow::CondJump { cond_compare: true, .. } | Flow::CondIndirect { cond_compare: true, .. }
    );
    for (i, op) in conv.ops.iter().enumerate() {
        if cond_compare && i == n - 1 {
            continue; // the condition compare lives only in a rename register
        }
        if op.kind.is_store() {
            exp.push(Expected::Store);
        } else if matches!(op.kind, OpKind::TrapIf { .. }) {
            exp.push(Expected::TrapCheck);
        } else if let Some(d) = op.dest {
            exp.push(Expected::DefGroup(d, op.dest2));
        }
    }
    if conv.links {
        exp.push(Expected::DefGroup(Reg::LR, None));
    }
    (exp, conv.flow, cond_compare)
}

/// Matches one expected commitment against the event stream starting at
/// `i`; returns the number of events consumed, or `None` on mismatch.
fn match_expected(exp: &Expected, events: &[ArchEvent], i: usize) -> Option<usize> {
    match (exp, events.get(i)?) {
        (Expected::Store, ArchEvent::Store) => Some(1),
        (Expected::TrapCheck, ArchEvent::TrapCheck) => Some(1),
        (Expected::DefGroup(d1, d2), ArchEvent::Def { d1: e1, d2: e2 }) => {
            if e1 == d1 && e2 == d2 {
                Some(1)
            } else if e1 == d1 && e2.is_none() {
                match d2 {
                    None => Some(1),
                    Some(d2) => match events.get(i + 1)? {
                        ArchEvent::Def { d1: f1, d2: None } if f1 == d2 => Some(2),
                        _ => None,
                    },
                }
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Recovers the base-architecture address of the instruction whose
/// parcel faulted. `events` is the architected-commitment record of the
/// group execution; `fault_idx` is the number of events that completed
/// before the fault.
///
/// # Errors
///
/// Returns [`RecoverError`] if the event stream cannot be matched to
/// the base instruction stream — which would mean the translator broke
/// the in-order-commit invariant.
pub fn recover<I: Isa>(
    mem: &Memory,
    entry: u32,
    events: &[ArchEvent],
    fault_idx: usize,
) -> Result<u32, RecoverError> {
    let mut pc = entry;
    let mut i = 0usize;
    // Bound the walk defensively; each instruction consumes ≥ 0 events
    // but the path length is bounded by the group's window.
    for _ in 0..100_000 {
        let (exp, flow, _) = expected_of::<I>(mem, pc);
        for e in &exp {
            if i >= fault_idx {
                return Ok(pc);
            }
            match match_expected(e, events, i) {
                Some(n) => i += n,
                None => {
                    return Err(RecoverError {
                        message: format!(
                            "at {pc:#x}: expected {e:?}, saw {:?} (index {i})",
                            events.get(i)
                        ),
                    })
                }
            }
        }
        pc = match flow {
            Flow::Fall => pc.wrapping_add(4),
            Flow::Jump { target } => target,
            Flow::CondJump { target, .. } => {
                if i >= fault_idx {
                    // A fault can occur while resolving the branch only
                    // through a tagged condition commit, which would
                    // have been caught at its Def; reaching here with
                    // i == fault_idx means the branch itself faulted.
                    return Ok(pc);
                }
                match events.get(i) {
                    Some(ArchEvent::Dir(taken)) => {
                        i += 1;
                        if *taken {
                            target
                        } else {
                            pc.wrapping_add(4)
                        }
                    }
                    other => {
                        return Err(RecoverError {
                            message: format!("at {pc:#x}: expected Dir, saw {other:?}"),
                        })
                    }
                }
            }
            Flow::IndirectJump { .. } => {
                // A specialized indirect branch (Ch. 6) records where it
                // actually went; otherwise the group ended here.
                match events.get(i) {
                    Some(ArchEvent::IndirectDir(Some(t))) if i < fault_idx => {
                        i += 1;
                        *t
                    }
                    _ => return Ok(pc),
                }
            }
            Flow::CondIndirect { .. } | Flow::Interp => {
                // The group ends at these; a fault past this point
                // belongs to the last instruction reached.
                return Ok(pc);
            }
        };
    }
    Err(RecoverError { message: "path walk exceeded bound".to_owned() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_ppc::asm::Asm;
    use daisy_ppc::reg::{CrField, Gpr};

    fn mem_with(build: impl FnOnce(&mut Asm)) -> Memory {
        let mut a = Asm::new(0x1000);
        build(&mut a);
        let prog = a.finish().unwrap();
        let mut mem = Memory::new(0x20000);
        prog.load_into(&mut mem).unwrap();
        mem
    }

    #[test]
    fn recovers_straight_line_fault() {
        let mem = mem_with(|a| {
            a.add(Gpr(3), Gpr(1), Gpr(2)); // 0x1000
            a.add(Gpr(4), Gpr(3), Gpr(3)); // 0x1004
            a.lwz(Gpr(5), 0, Gpr(9)); // 0x1008 — faults
            a.sc();
        });
        let events = [
            ArchEvent::Def { d1: Reg::gpr(Gpr(3)), d2: None },
            ArchEvent::Def { d1: Reg::gpr(Gpr(4)), d2: None },
            // load's Def never completed
        ];
        assert_eq!(recover::<daisy_ppc::PpcIsa>(&mem, 0x1000, &events, 2), Ok(0x1008));
    }

    #[test]
    fn recovers_across_branch_direction() {
        let mem = mem_with(|a| {
            a.cmpwi(CrField(0), Gpr(3), 0); // 0x1000
            a.beq(CrField(0), "skip"); // 0x1004
            a.add(Gpr(4), Gpr(4), Gpr(4)); // 0x1008
            a.label("skip");
            a.stw(Gpr(5), 0, Gpr(9)); // 0x100c — faults
            a.sc();
        });
        // Taken direction: skip the add.
        let events = [ArchEvent::Def { d1: Reg::cr(CrField(0)), d2: None }, ArchEvent::Dir(true)];
        assert_eq!(recover::<daisy_ppc::PpcIsa>(&mem, 0x1000, &events, 2), Ok(0x100C));
        // Not-taken direction: the add commits first.
        let events = [
            ArchEvent::Def { d1: Reg::cr(CrField(0)), d2: None },
            ArchEvent::Dir(false),
            ArchEvent::Def { d1: Reg::gpr(Gpr(4)), d2: None },
        ];
        assert_eq!(recover::<daisy_ppc::PpcIsa>(&mem, 0x1000, &events, 3), Ok(0x100C));
    }

    #[test]
    fn carry_def_matches_split_commits() {
        let mem = mem_with(|a| {
            a.addic(Gpr(3), Gpr(1), 5); // defines r3 and CA
            a.lwz(Gpr(5), 0, Gpr(9)); // faults
            a.sc();
        });
        // Renamed execution commits r3 and CA as separate copies.
        let events = [
            ArchEvent::Def { d1: Reg::gpr(Gpr(3)), d2: None },
            ArchEvent::Def { d1: Reg::CA, d2: None },
        ];
        assert_eq!(recover::<daisy_ppc::PpcIsa>(&mem, 0x1000, &events, 2), Ok(0x1004));
        // In-order execution writes both in one parcel.
        let events = [ArchEvent::Def { d1: Reg::gpr(Gpr(3)), d2: Some(Reg::CA) }];
        assert_eq!(recover::<daisy_ppc::PpcIsa>(&mem, 0x1000, &events, 1), Ok(0x1004));
    }

    #[test]
    fn mismatch_reports_error() {
        let mem = mem_with(|a| {
            a.add(Gpr(3), Gpr(1), Gpr(2));
            a.sc();
        });
        let events = [ArchEvent::Store];
        assert!(recover::<daisy_ppc::PpcIsa>(&mem, 0x1000, &events, 1).is_err());
    }

    #[test]
    fn fault_at_first_parcel() {
        let mem = mem_with(|a| {
            a.lwz(Gpr(5), 0, Gpr(9));
            a.sc();
        });
        assert_eq!(recover::<daisy_ppc::PpcIsa>(&mem, 0x1000, &[], 0), Ok(0x1000));
    }
}
