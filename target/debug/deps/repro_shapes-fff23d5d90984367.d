/root/repo/target/debug/deps/repro_shapes-fff23d5d90984367.d: tests/repro_shapes.rs

/root/repo/target/debug/deps/repro_shapes-fff23d5d90984367: tests/repro_shapes.rs

tests/repro_shapes.rs:
