/root/repo/target/debug/deps/dispatch-0540871d3492d8b4.d: crates/bench/benches/dispatch.rs Cargo.toml

/root/repo/target/debug/deps/libdispatch-0540871d3492d8b4.rmeta: crates/bench/benches/dispatch.rs Cargo.toml

crates/bench/benches/dispatch.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
