//! A modeled SoC for the DAISY reproduction: the MMIO device tree that
//! interrupt-driven firmware workloads run against.
//!
//! The paper's compatibility claim covers *operating-system* code —
//! interrupt delivery, context switching, device access (§3.5, §3.7) —
//! but user-style kernels never exercise that surface. This crate
//! supplies the missing system half: a [`Soc`] device tree implementing
//! [`daisy_isa::mem::Bus`], carrying
//!
//! * a **programmable interval timer** — compare register against the
//!   retired-instruction clock, auto-reload on a fixed grid, raise/ack;
//! * a **UART** — TX bytes accumulate in a transcript the harness reads
//!   back (and diffs bit-for-bit against the oracle run), RX bytes are
//!   injectable by the harness;
//! * an **IRQ controller** — per-line pending/enable/claim registers
//!   whose aggregated output level feeds the core's external-interrupt
//!   delivery.
//!
//! # Device time
//!
//! Devices are clocked by **retired guest instructions**, not host time
//! and not VLIW cycles: it is the only clock that every execution tier
//! (interpreter, tree, packed, native) and the interpreter oracle agree
//! on bit-for-bit. All device state is a pure function of (`now`, the
//! history of MMIO writes with their times) — sampling the IRQ line
//! mutates nothing — which is what lets the preemption-fuzz harness
//! replay a translated run's interrupt deliveries on the oracle and
//! demand identical device state back.
//!
//! # Register map
//!
//! The window is [`SOC_BASE`]`..`[`SOC_BASE`]` + `[`SOC_LEN`], placed
//! above RAM so translated code's bounds guards bail for free. All
//! registers are 32-bit and respond identically at any access width
//! (no byte-lane decoding).
//!
//! | offset | name | access | function |
//! |---|---|---|---|
//! | `0x00` | `TIMER_COUNT` | R | low 32 bits of the retired-instruction clock |
//! | `0x04` | `TIMER_PERIOD` | R/W | tick period; a write re-anchors the next tick to `now + period` |
//! | `0x08` | `TIMER_CTRL` | R/W | bit 0 enables the timer (enabling re-anchors) |
//! | `0x0C` | `TIMER_ACK` | W | acknowledge: advance the tick on its fixed grid past `now` |
//! | `0x40` | `UART_TX` | W | append the low byte to the transcript |
//! | `0x44` | `UART_RX` | R | pop the next injected byte (0 when empty) |
//! | `0x48` | `UART_STATUS` | R | bit 0: RX non-empty; bit 1: TX ready (always set) |
//! | `0x80` | `IRQ_PENDING` | R | level of each source line ([`IRQ_TIMER`], [`IRQ_UART_RX`]) |
//! | `0x84` | `IRQ_ENABLE` | R/W | per-line enable mask |
//! | `0x88` | `IRQ_CLAIM` | R | lowest pending-and-enabled line + 1, or 0 |
//!
//! The timer is **level-triggered**: once `now` reaches the compare
//! value the line stays asserted until the firmware writes `TIMER_ACK`,
//! which steps the compare value along the fixed `period` grid until it
//! passes `now` — a late acknowledgment therefore never produces a
//! burst of catch-up interrupts, but the grid itself never drifts.
//!
//! See `docs/soc.md` for the firmware walkthrough.

#![warn(missing_docs)]

use daisy_isa::mem::Bus;
use std::collections::VecDeque;

/// Guest-physical base of the SoC's MMIO window. Above every
/// workload's RAM size, so device accesses fail the RAM bounds check
/// (and thereby bail out of translated code) on every tier.
pub const SOC_BASE: u32 = 0x4000_0000;

/// Length of the MMIO window in bytes.
pub const SOC_LEN: u32 = 0x100;

/// Register offsets within the window.
pub mod reg {
    /// Low 32 bits of the retired-instruction clock (read-only).
    pub const TIMER_COUNT: u32 = 0x00;
    /// Tick period in retired instructions (read/write; write re-anchors).
    pub const TIMER_PERIOD: u32 = 0x04;
    /// Control: bit 0 enables (read/write; enabling re-anchors).
    pub const TIMER_CTRL: u32 = 0x08;
    /// Acknowledge: advance the tick along its fixed grid (write-only).
    pub const TIMER_ACK: u32 = 0x0C;
    /// Transmit a byte to the harness-visible transcript (write-only).
    pub const UART_TX: u32 = 0x40;
    /// Pop the next harness-injected byte, 0 when empty (read-only).
    pub const UART_RX: u32 = 0x44;
    /// Bit 0: RX non-empty. Bit 1: TX ready (always). (read-only)
    pub const UART_STATUS: u32 = 0x48;
    /// Current level of each interrupt source line (read-only).
    pub const IRQ_PENDING: u32 = 0x80;
    /// Per-line interrupt enable mask (read/write).
    pub const IRQ_ENABLE: u32 = 0x84;
    /// Lowest pending-and-enabled line number + 1, or 0 (read-only).
    pub const IRQ_CLAIM: u32 = 0x88;
}

/// IRQ controller line number of the interval timer.
pub const IRQ_TIMER: u32 = 0;

/// IRQ controller line number of UART RX-available.
pub const IRQ_UART_RX: u32 = 1;

/// The programmable interval timer.
///
/// `next_fire` is the compare value: the line is asserted whenever the
/// timer is enabled, `period` is nonzero, and `now >= next_fire`.
/// Acknowledgment advances `next_fire` along the fixed grid anchored at
/// the last `TIMER_PERIOD`/enable write — cadence never drifts with
/// delivery latency, and a very late ack catches up in one step rather
/// than bursting (one `+= period` per missed tick, all at ack time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timer {
    /// Tick period in retired guest instructions (0 = never fires).
    pub period: u32,
    /// Compare value on the retired-instruction clock.
    pub next_fire: u64,
    /// Bit 0: enabled.
    pub ctrl: u32,
}

impl Timer {
    fn new() -> Timer {
        Timer { period: 0, next_fire: 0, ctrl: 0 }
    }

    fn enabled(&self) -> bool {
        self.ctrl & 1 != 0 && self.period != 0
    }

    /// Level of the timer's interrupt line at `now`.
    pub fn line(&self, now: u64) -> bool {
        self.enabled() && now >= self.next_fire
    }

    fn ack(&mut self, now: u64) {
        if self.period == 0 {
            return;
        }
        while self.next_fire <= now {
            self.next_fire += self.period as u64;
        }
    }
}

/// The UART: a TX transcript plus an injectable RX queue.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Uart {
    /// Every byte the guest ever wrote to `UART_TX`, in order. The
    /// harness reads this back and diffs it against the oracle run.
    pub tx: Vec<u8>,
    /// Bytes waiting for the guest to read from `UART_RX`.
    pub rx: VecDeque<u8>,
}

/// The full device tree: timer + UART + IRQ controller, implementing
/// [`Bus`]. Attach with [`daisy_isa::mem::Memory::attach_bus`] at
/// [`SOC_BASE`] (see [`standard_bus`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Soc {
    /// The interval timer (IRQ line [`IRQ_TIMER`]).
    pub timer: Timer,
    /// The UART (IRQ line [`IRQ_UART_RX`]).
    pub uart: Uart,
    /// IRQ controller enable mask.
    pub irq_enable: u32,
}

impl Default for Soc {
    fn default() -> Soc {
        Soc::new()
    }
}

impl Soc {
    /// A quiescent SoC: timer disabled, queues empty, all IRQ lines
    /// masked.
    pub fn new() -> Soc {
        Soc { timer: Timer::new(), uart: Uart::default(), irq_enable: 0 }
    }

    /// Level of each source line at `now`, as the `IRQ_PENDING` mask.
    /// Level-triggered: computed fresh from device state, never
    /// latched.
    pub fn pending(&self, now: u64) -> u32 {
        (self.timer.line(now) as u32) << IRQ_TIMER
            | (!self.uart.rx.is_empty() as u32) << IRQ_UART_RX
    }

    /// Queues a byte for the guest to read from `UART_RX`.
    pub fn inject_rx(&mut self, byte: u8) {
        self.uart.rx.push_back(byte);
    }

    /// The TX transcript so far.
    pub fn transcript(&self) -> &[u8] {
        &self.uart.tx
    }
}

impl Bus for Soc {
    fn read(&mut self, now: u64, offset: u32, _width: u32) -> u32 {
        match offset & !3 {
            reg::TIMER_COUNT => now as u32,
            reg::TIMER_PERIOD => self.timer.period,
            reg::TIMER_CTRL => self.timer.ctrl,
            reg::UART_RX => self.uart.rx.pop_front().map_or(0, u32::from),
            reg::UART_STATUS => (!self.uart.rx.is_empty() as u32) | 0b10,
            reg::IRQ_PENDING => self.pending(now),
            reg::IRQ_ENABLE => self.irq_enable,
            reg::IRQ_CLAIM => {
                let live = self.pending(now) & self.irq_enable;
                if live == 0 {
                    0
                } else {
                    live.trailing_zeros() + 1
                }
            }
            _ => 0,
        }
    }

    fn write(&mut self, now: u64, offset: u32, _width: u32, value: u32) {
        match offset & !3 {
            reg::TIMER_PERIOD => {
                self.timer.period = value;
                self.timer.next_fire = now + value as u64;
            }
            reg::TIMER_CTRL => {
                let was = self.timer.ctrl & 1;
                self.timer.ctrl = value & 1;
                if was == 0 && value & 1 != 0 {
                    self.timer.next_fire = now + self.timer.period as u64;
                }
            }
            reg::TIMER_ACK => self.timer.ack(now),
            reg::UART_TX => self.uart.tx.push(value as u8),
            reg::IRQ_ENABLE => self.irq_enable = value,
            _ => {}
        }
    }

    fn irq_level(&mut self, now: u64) -> bool {
        self.pending(now) & self.irq_enable != 0
    }

    fn snapshot(&mut self, now: u64) -> Vec<u8> {
        let mut s = Vec::new();
        s.extend_from_slice(&self.timer.period.to_be_bytes());
        s.extend_from_slice(&self.timer.next_fire.to_be_bytes());
        s.extend_from_slice(&self.timer.ctrl.to_be_bytes());
        s.extend_from_slice(&self.irq_enable.to_be_bytes());
        s.extend_from_slice(&self.pending(now).to_be_bytes());
        s.extend_from_slice(&(self.uart.tx.len() as u32).to_be_bytes());
        s.extend_from_slice(&self.uart.tx);
        s.extend_from_slice(&(self.uart.rx.len() as u32).to_be_bytes());
        s.extend(self.uart.rx.iter());
        s
    }

    fn clone_box(&self) -> Box<dyn Bus> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn host_inject(&mut self, _now: u64, data: u32) {
        self.inject_rx(data as u8);
    }
}

/// The standard attachment: `(base, len, device tree)` for
/// [`daisy_isa::mem::Memory::attach_bus`]. Harness code passes this
/// factory around as a `fn()` so the guest-agnostic core never names
/// the concrete device types.
pub fn standard_bus() -> (u32, u32, Box<dyn Bus>) {
    (SOC_BASE, SOC_LEN, Box::new(Soc::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rd(s: &mut Soc, now: u64, off: u32) -> u32 {
        s.read(now, off, 4)
    }

    fn wr(s: &mut Soc, now: u64, off: u32, v: u32) {
        s.write(now, off, 4, v);
    }

    #[test]
    fn timer_fixed_cadence() {
        let mut s = Soc::new();
        wr(&mut s, 100, reg::TIMER_PERIOD, 50);
        wr(&mut s, 100, reg::TIMER_CTRL, 1);
        wr(&mut s, 100, reg::IRQ_ENABLE, 1 << IRQ_TIMER);
        assert!(!s.irq_level(149));
        assert!(s.irq_level(150));
        assert!(s.irq_level(173)); // level-triggered: stays up until ack

        // Ack 23 instructions late: the next tick still lands on the
        // original grid (200), not 173 + 50.
        wr(&mut s, 173, reg::TIMER_ACK, 0);
        assert!(!s.irq_level(199));
        assert!(s.irq_level(200));

        // Ack three whole periods late: exactly one catch-up to the
        // next grid point, no burst.
        wr(&mut s, 360, reg::TIMER_ACK, 0);
        assert_eq!(s.timer.next_fire, 400);
        assert!(!s.irq_level(399));
        assert!(s.irq_level(400));
    }

    #[test]
    fn timer_disabled_or_masked_is_silent() {
        let mut s = Soc::new();
        wr(&mut s, 0, reg::TIMER_PERIOD, 10);
        assert!(!s.irq_level(1000)); // not enabled
        wr(&mut s, 0, reg::TIMER_CTRL, 1);
        assert!(s.pending(1000) & (1 << IRQ_TIMER) != 0);
        assert!(!s.irq_level(1000)); // pending but masked
        wr(&mut s, 0, reg::IRQ_ENABLE, 1 << IRQ_TIMER);
        assert!(s.irq_level(1000));
        wr(&mut s, 1000, reg::TIMER_CTRL, 0);
        assert!(!s.irq_level(2000)); // disabled again
    }

    #[test]
    fn uart_roundtrip_and_claim() {
        let mut s = Soc::new();
        for &b in b"ok" {
            wr(&mut s, 5, reg::UART_TX, b as u32);
        }
        assert_eq!(s.transcript(), b"ok");

        assert_eq!(rd(&mut s, 6, reg::UART_STATUS), 0b10);
        assert_eq!(rd(&mut s, 6, reg::UART_RX), 0);
        s.inject_rx(b'x');
        assert_eq!(rd(&mut s, 7, reg::UART_STATUS), 0b11);
        assert_eq!(s.pending(7), 1 << IRQ_UART_RX);
        assert_eq!(rd(&mut s, 7, reg::IRQ_CLAIM), 0); // masked
        wr(&mut s, 7, reg::IRQ_ENABLE, 1 << IRQ_UART_RX);
        assert_eq!(rd(&mut s, 7, reg::IRQ_CLAIM), IRQ_UART_RX + 1);
        assert_eq!(rd(&mut s, 8, reg::UART_RX), u32::from(b'x'));
        assert_eq!(rd(&mut s, 8, reg::IRQ_CLAIM), 0); // line dropped
    }

    #[test]
    fn claim_prefers_lowest_line() {
        let mut s = Soc::new();
        wr(&mut s, 0, reg::TIMER_PERIOD, 1);
        wr(&mut s, 0, reg::TIMER_CTRL, 1);
        s.inject_rx(1);
        wr(&mut s, 0, reg::IRQ_ENABLE, 0b11);
        assert_eq!(rd(&mut s, 10, reg::IRQ_CLAIM), IRQ_TIMER + 1);
    }

    #[test]
    fn snapshot_captures_everything() {
        let mut a = Soc::new();
        let mut b = Soc::new();
        assert_eq!(a.snapshot(9), b.snapshot(9));
        wr(&mut a, 3, reg::UART_TX, 0x41);
        assert_ne!(a.snapshot(9), b.snapshot(9));
        wr(&mut b, 3, reg::UART_TX, 0x41);
        assert_eq!(a.snapshot(9), b.snapshot(9));
        // Same write at a different time diverges (timer anchor).
        wr(&mut a, 10, reg::TIMER_PERIOD, 4);
        wr(&mut b, 11, reg::TIMER_PERIOD, 4);
        assert_ne!(a.snapshot(20), b.snapshot(20));
    }

    #[test]
    fn count_register_tracks_clock() {
        let mut s = Soc::new();
        assert_eq!(rd(&mut s, 1234, reg::TIMER_COUNT), 1234);
        assert_eq!(rd(&mut s, 0x1_0000_0005, reg::TIMER_COUNT), 5);
    }
}
