//! Top-level umbrella crate for the DAISY reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can
//! reach the whole system through one dependency. See the member crates
//! for the real APIs:
//!
//! * [`isa`] — the guest-agnostic frontend boundary (`Isa`, `GuestCpu`)
//! * [`ppc`] — the PowerPC base-architecture frontend
//! * [`rv32`] — the RV32I-subset frontend
//! * [`vliw`] — the migrant VLIW tree-instruction architecture
//! * [`cachesim`] — the memory-hierarchy simulator
//! * [`daisy`] — the dynamic translator, VMM, and system driver
//! * [`baseline`] — traditional-compiler and PowerPC 604E comparators
//! * [`workloads`] — the benchmark programs of the paper's Chapter 5

pub use daisy;
pub use daisy_baseline as baseline;
pub use daisy_cachesim as cachesim;
pub use daisy_isa as isa;
pub use daisy_ppc as ppc;
pub use daisy_rv32 as rv32;
pub use daisy_vliw as vliw;
pub use daisy_workloads as workloads;
