/root/repo/target/debug/examples/inspect-b367951afe23ac0c.d: examples/inspect.rs

/root/repo/target/debug/examples/inspect-b367951afe23ac0c: examples/inspect.rs

examples/inspect.rs:
