/root/repo/target/debug/deps/dispatch-346132cdd7fd7612.d: crates/bench/benches/dispatch.rs

/root/repo/target/debug/deps/dispatch-346132cdd7fd7612: crates/bench/benches/dispatch.rs

crates/bench/benches/dispatch.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
