/root/repo/target/debug/deps/profile-bd2896e826b49740.d: crates/bench/src/bin/profile.rs

/root/repo/target/debug/deps/profile-bd2896e826b49740: crates/bench/src/bin/profile.rs

crates/bench/src/bin/profile.rs:
