//! Tests pinned to specific mechanisms the paper describes, beyond the
//! general equivalence suites: Appendix D's CTR renaming, Figure 2.2's
//! scheduling detail, §3.4's post-rfi interpretation window, §3.7-ish
//! cast-out behaviour, and CISC decomposition under translation.

use daisy::sched::TranslatorConfig;
use daisy::system::DaisySystem;
use daisy_cachesim::Hierarchy;
use daisy_ppc::asm::Asm;
use daisy_ppc::insn::Insn;
use daisy_ppc::interp::{Cpu, StopReason};
use daisy_ppc::mem::Memory;
use daisy_ppc::reg::{CrField, Gpr, Spr};
use daisy_ppc::vectors;
use daisy_ppc::PpcIsa;
use daisy_vliw::op::OpKind;

fn run_daisy(prog: &daisy_ppc::asm::Program, mem_size: u32) -> (DaisySystem<PpcIsa>, StopReason) {
    let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(mem_size).build();
    sys.load(prog).unwrap();
    let stop = sys.run(100_000_000).unwrap();
    (sys, stop)
}

fn run_interp(prog: &daisy_ppc::asm::Program, mem_size: u32) -> Cpu {
    let mut mem = Memory::new(mem_size);
    prog.load_into(&mut mem).unwrap();
    let mut cpu = Cpu::new(prog.entry);
    cpu.run(&mut mem, 100_000_000).unwrap();
    cpu
}

/// Appendix D: "such branches limit parallelism by requiring that no
/// more than one loop iteration execute per cycle. To overcome this
/// problem … the value in ctr can be explicitly decremented with the
/// result renamed." A tight bdnz loop must overlap iterations.
#[test]
fn appendix_d_ctr_renaming_overlaps_iterations() {
    let mut a = Asm::new(0x1000);
    a.li(Gpr(4), 600);
    a.mtctr(Gpr(4));
    a.label("loop");
    a.addi(Gpr(3), Gpr(3), 1);
    a.addi(Gpr(5), Gpr(5), 2);
    a.addi(Gpr(6), Gpr(6), 3);
    a.bdnz("loop");
    a.sc();
    let prog = a.finish().unwrap();

    let cpu = run_interp(&prog, 0x10000);
    let (sys, stop) = run_daisy(&prog, 0x10000);
    assert_eq!(stop, StopReason::Syscall);
    assert_eq!(sys.cpu.gpr[3], cpu.gpr[3]);
    let ilp = sys.stats.pathlength_reduction(cpu.ninstrs);
    // 4 instructions per iteration; without CTR renaming the decrement→
    // compare→branch chain would pin ILP near 1.3. With renaming, the
    // unrolled iterations overlap.
    assert!(ilp > 2.0, "bdnz loop ILP {ilp:.2}: CTR renaming is not overlapping iterations");
}

/// Figure 2.2 / Appendix C, step 11: "the cntlz in step 11 can use the
/// result in r63 before it has been copied to r4" — the consumer on the
/// other branch arm reads the *renamed* register.
#[test]
fn figure_2_2_consumer_reads_renamed_register() {
    let mut a = Asm::new(0x1000);
    a.add(Gpr(1), Gpr(2), Gpr(3));
    a.beq(CrField(0), "l1");
    a.slwi(Gpr(12), Gpr(1), 3);
    a.xor(Gpr(4), Gpr(5), Gpr(6));
    a.and(Gpr(8), Gpr(4), Gpr(7));
    a.beq(CrField(1), "l2");
    a.b("off");
    a.label("l1");
    a.subf(Gpr(9), Gpr(11), Gpr(10));
    a.b("off");
    a.label("l2");
    a.cntlzw(Gpr(11), Gpr(4));
    a.b("off");
    for _ in 0..1024 {
        a.nop();
    }
    a.label("off");
    a.sc();
    let prog = a.finish().unwrap();

    let mut mem = Memory::new(0x20000);
    prog.load_into(&mut mem).unwrap();
    let (group, _) =
        daisy::sched::translate_group::<PpcIsa>(&TranslatorConfig::default(), &mem, 0x1000);
    // Find the cntlz parcel and check its source is non-architected.
    let cntlz = group
        .vliws
        .iter()
        .flat_map(|v| v.nodes().iter())
        .flat_map(|n| n.ops.iter())
        .find(|o| o.kind == OpKind::Cntlz)
        .expect("cntlz scheduled");
    assert!(
        cntlz.srcs()[0].is_rename(),
        "cntlz should read the xor's renamed result, got {}",
        cntlz.srcs()[0]
    );
}

/// CISCy `stmw`/`lmw` decompose into per-register primitives and stay
/// bit-exact through translation.
#[test]
fn load_store_multiple_under_translation() {
    let mut a = Asm::new(0x1000);
    a.li32(Gpr(1), 0x8000);
    for i in 25..32u8 {
        a.li(Gpr(i), i16::from(i) * 3);
    }
    a.stmw(Gpr(25), 0, Gpr(1));
    for i in 25..32u8 {
        a.li(Gpr(i), 0);
    }
    a.lmw(Gpr(25), 0, Gpr(1));
    a.sc();
    let prog = a.finish().unwrap();
    let cpu = run_interp(&prog, 0x10000);
    let (sys, _) = run_daisy(&prog, 0x10000);
    assert_eq!(sys.cpu.gpr, cpu.gpr);
    for i in 25..32 {
        assert_eq!(sys.cpu.gpr[i], i as u32 * 3);
    }
}

/// §3.4: after an `rfi`, the VMM interprets until the next call,
/// cross-page branch, or backward branch, rather than minting entry
/// points at arbitrary return addresses.
#[test]
fn post_rfi_interpretation_window() {
    // Program: trigger a DSI, handler returns past it; the next few
    // instructions run interpreted until the backward branch.
    let mut a = Asm::new(0x1000);
    a.li32(Gpr(9), 0x00F0_0000);
    a.lwz(Gpr(5), 0, Gpr(9)); // faults
    a.addi(Gpr(3), Gpr(3), 1); // interpreted after rfi
    a.addi(Gpr(3), Gpr(3), 1); // interpreted
    a.li(Gpr(4), 2);
    a.mtctr(Gpr(4));
    a.label("back");
    a.addi(Gpr(3), Gpr(3), 10);
    a.bdnz("back"); // backward branch ends the window
    a.sc();
    let prog = a.finish().unwrap();

    let mut os = Asm::new(vectors::DSI);
    os.emit(Insn::Mfspr { rt: Gpr(8), spr: Spr::Srr0 });
    os.addi(Gpr(8), Gpr(8), 4);
    os.emit(Insn::Mtspr { spr: Spr::Srr0, rs: Gpr(8) });
    os.rfi();
    let os_prog = os.finish().unwrap();

    let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(0x20000).build();
    sys.load(&prog).unwrap();
    os_prog.load_into(&mut sys.mem).unwrap();
    sys.cpu.vectored = true;
    sys.run(1_000_000).unwrap();
    assert_eq!(sys.cpu.gpr[3], 2 + 20, "handler skip + loop body");
    // rfi itself + several window instructions were interpreted.
    assert!(
        sys.stats.interp_instrs >= 4,
        "expected a post-rfi interpretation window, interp_instrs = {}",
        sys.stats.interp_instrs
    );
}

/// Traps translate to non-speculative parcels and stop precisely.
#[test]
fn trap_word_fires_precisely() {
    let mut a = Asm::new(0x1000);
    a.li(Gpr(3), 5);
    a.twi(4, Gpr(3), 5); // trap if r3 == 5 — fires
    a.li(Gpr(3), 99); // must not execute
    a.sc();
    let prog = a.finish().unwrap();
    let (sys, stop) = run_daisy(&prog, 0x10000);
    assert_eq!(stop, StopReason::Trap);
    assert_eq!(sys.cpu.gpr[3], 5, "state precise at the trap");

    // Non-firing trap falls through.
    let mut a = Asm::new(0x1000);
    a.li(Gpr(3), 4);
    a.twi(4, Gpr(3), 5);
    a.li(Gpr(3), 99);
    a.sc();
    let prog = a.finish().unwrap();
    let (sys, stop) = run_daisy(&prog, 0x10000);
    assert_eq!(stop, StopReason::Syscall);
    assert_eq!(sys.cpu.gpr[3], 99);
}

/// A capacity-starved translated-code area thrashes (many cast-outs and
/// retranslations) but never compromises correctness — §5.1's warning,
/// mechanically.
#[test]
fn cast_out_thrashing_is_slow_but_correct() {
    // Ping-pong between code on two pages.
    let mut a = Asm::new(0x1000);
    a.li(Gpr(4), 40);
    a.mtctr(Gpr(4));
    a.label("a_side");
    a.addi(Gpr(3), Gpr(3), 1);
    a.b("b_side");
    for _ in 0..1024 {
        a.nop();
    }
    a.label("b_side");
    a.addi(Gpr(3), Gpr(3), 1);
    a.bdnz("a_side");
    a.sc();
    let prog = a.finish().unwrap();

    let cpu = run_interp(&prog, 0x20000);

    // Capacity far too small: ~one tiny group.
    let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(0x20000).code_capacity(40).build();
    sys.load(&prog).unwrap();
    let stop = sys.run(100_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall);
    assert_eq!(sys.cpu.gpr, cpu.gpr, "thrashing must stay correct");
    assert!(
        sys.vmm.stats.cast_outs > 10,
        "expected a cast-out storm, got {}",
        sys.vmm.stats.cast_outs
    );
    assert!(
        sys.vmm.stats.groups_translated > 10,
        "expected retranslation, got {}",
        sys.vmm.stats.groups_translated
    );
}

/// §2.1: "there is no need to save or restore non-architected registers
/// at context switch time." Two programs sharing one DAISY machine,
/// preemptively interleaved by swapping only the *architected* CPU
/// state, must both produce their uninterrupted results — speculative
/// rename-register contents are discarded at every switch.
#[test]
fn context_switches_carry_only_architected_state() {
    let build = |base: u32, seed: i16| {
        let mut a = Asm::new(base);
        a.li(Gpr(3), 0);
        a.li(Gpr(4), 300);
        a.mtctr(Gpr(4));
        a.label("loop");
        a.addi(Gpr(3), Gpr(3), seed);
        a.mullw(Gpr(5), Gpr(3), Gpr(3));
        a.xor(Gpr(6), Gpr(5), Gpr(3));
        a.bdnz("loop");
        a.sc();
        a.finish().unwrap()
    };
    let prog_a = build(0x1000, 3);
    let prog_b = build(0x3000, 7);

    // Uninterrupted references.
    let ref_a = run_interp(&prog_a, 0x10000);
    let ref_b = run_interp(&prog_b, 0x10000);

    // One machine, two "processes", round-robin every 200 cycles.
    let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(0x10000).build();
    prog_a.load_into(&mut sys.mem).unwrap();
    prog_b.load_into(&mut sys.mem).unwrap();
    let mut cpus = [Cpu::new(prog_a.entry), Cpu::new(prog_b.entry)];
    let mut done = [false, false];
    let mut cur = 0usize;
    for _ in 0..10_000 {
        if done == [true, true] {
            break;
        }
        if !done[cur] {
            std::mem::swap(&mut sys.cpu, &mut cpus[cur]);
            let budget = sys.stats.cycles() + 200;
            let stop = sys.run(budget).unwrap();
            std::mem::swap(&mut sys.cpu, &mut cpus[cur]);
            if stop == StopReason::Syscall {
                done[cur] = true;
            }
        }
        cur ^= 1;
    }
    assert_eq!(done, [true, true], "both processes must finish");
    assert_eq!(cpus[0].gpr, ref_a.gpr, "process A corrupted by context switches");
    assert_eq!(cpus[1].gpr, ref_b.gpr, "process B corrupted by context switches");
}

/// §3.3/§3.7: external (timer) interrupts reach the emulated OS at
/// precise points and the interrupted computation still completes
/// exactly.
#[test]
fn timer_interrupts_are_transparent_to_the_computation() {
    let mut a = Asm::new(0x1000);
    a.li(Gpr(3), 0);
    a.li(Gpr(4), 500);
    a.mtctr(Gpr(4));
    a.label("loop");
    a.addi(Gpr(3), Gpr(3), 2);
    a.bdnz("loop");
    a.sc();
    let prog = a.finish().unwrap();
    let reference = run_interp(&prog, 0x20000);

    // OS: the external handler at 0x500 counts ticks in r30 and rfi's.
    let mut os = Asm::new(vectors::EXTERNAL);
    os.addi(Gpr(30), Gpr(30), 1);
    os.rfi();
    let os_prog = os.finish().unwrap();

    // rfi restores EE because SRR1 snapshots the MSR at delivery.
    let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(0x20000).timer_period(50).build();
    sys.load(&prog).unwrap();
    os_prog.load_into(&mut sys.mem).unwrap();
    sys.cpu.msr |= daisy_ppc::reg::msr_bits::EE;
    let stop = sys.run(10_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall);
    assert_eq!(sys.cpu.gpr[3], reference.gpr[3], "computation must be exact under ticks");
    assert!(sys.cpu.gpr[30] > 3, "expected several timer ticks, got {}", sys.cpu.gpr[30]);
}

/// Ch. 5's proposed remedy for aliasing-heavy code, implemented: after
/// a few run-time alias restarts, the offending entry is retranslated
/// with load speculation off, and the alias storm stops — with results
/// still exact.
#[test]
fn alias_heavy_entries_get_retranslated_conservatively() {
    let w = daisy_workloads::by_name("hist").expect("hist workload");
    let prog = w.program();

    // Baseline: speculation kept, aliases accumulate.
    let mut base = DaisySystem::<PpcIsa>::builder().mem_size(w.mem_size).build();
    base.load(&prog).unwrap();
    base.run(50 * w.max_instrs).unwrap();
    w.check(&base.cpu, &base.mem).unwrap();
    assert!(base.stats.alias_failures > 100, "hist should alias a lot by default");

    // Remedy on: the storm is cut off after the threshold.
    let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(w.mem_size).build();
    sys.vmm.alias_retranslate_after = Some(5);
    sys.load(&prog).unwrap();
    sys.run(50 * w.max_instrs).unwrap();
    w.check(&sys.cpu, &sys.mem).unwrap();
    assert!(sys.vmm.stats.alias_retranslations >= 1, "entry should be retranslated");
    assert!(
        sys.stats.alias_failures < base.stats.alias_failures / 5,
        "aliases should collapse: {} vs baseline {}",
        sys.stats.alias_failures,
        base.stats.alias_failures
    );
}

/// Interpretive compilation on an indirect dispatch loop specializes
/// the hot target and keeps results exact.
#[test]
fn interpretive_specializes_on_page_indirect_targets() {
    // A bctr whose target is always the same on-page label.
    let mut a = Asm::new(0x1000);
    a.li(Gpr(3), 0);
    a.li(Gpr(6), 100);
    a.la(Gpr(7), "body");
    a.label("loop");
    a.mtctr(Gpr(7));
    a.bctr(); // always to "body"
    a.label("body");
    a.addi(Gpr(3), Gpr(3), 1);
    a.addi(Gpr(6), Gpr(6), -1);
    a.cmpwi(CrField(0), Gpr(6), 0);
    a.bne(CrField(0), "loop");
    a.sc();
    let prog = a.finish().unwrap();

    let cpu = run_interp(&prog, 0x10000);

    let cfg = TranslatorConfig { interpretive: true, ..TranslatorConfig::default() };
    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(0x10000)
        .translator(cfg)
        .cache(Hierarchy::infinite())
        .build();
    sys.load(&prog).unwrap();
    let stop = sys.run(10_000_000).unwrap();
    assert_eq!(stop, StopReason::Syscall);
    assert_eq!(sys.cpu.gpr[3], cpu.gpr[3]);
    // Specialization keeps most iterations inside translated groups:
    // fewer cross-page/indirect dispatches than iterations.
    assert!(
        sys.stats.crosspage.via_ctr < 100,
        "specialization should absorb the bctr, saw {} via-CTR dispatches",
        sys.stats.crosspage.via_ctr
    );
}
