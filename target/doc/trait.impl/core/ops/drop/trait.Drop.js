(function() {
    const implementors = Object.fromEntries([["proptest",[["impl&lt;F: <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/function/trait.Fn.html\" title=\"trait core::ops::function::Fn\">Fn</a>()&gt; <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/drop/trait.Drop.html\" title=\"trait core::ops::drop::Drop\">Drop</a> for <a class=\"struct\" href=\"proptest/test_runner/struct.PanicReporter.html\" title=\"struct proptest::test_runner::PanicReporter\">PanicReporter</a>&lt;F&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[476]}