/root/repo/target/debug/examples/inspect-abe7007a0477dfc8.d: examples/inspect.rs Cargo.toml

/root/repo/target/debug/examples/libinspect-abe7007a0477dfc8.rmeta: examples/inspect.rs Cargo.toml

examples/inspect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
