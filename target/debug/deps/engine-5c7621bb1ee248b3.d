/root/repo/target/debug/deps/engine-5c7621bb1ee248b3.d: crates/bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-5c7621bb1ee248b3.rmeta: crates/bench/benches/engine.rs Cargo.toml

crates/bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
