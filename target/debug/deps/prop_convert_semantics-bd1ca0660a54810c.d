/root/repo/target/debug/deps/prop_convert_semantics-bd1ca0660a54810c.d: tests/prop_convert_semantics.rs

/root/repo/target/debug/deps/prop_convert_semantics-bd1ca0660a54810c: tests/prop_convert_semantics.rs

tests/prop_convert_semantics.rs:
