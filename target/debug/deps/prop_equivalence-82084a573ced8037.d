/root/repo/target/debug/deps/prop_equivalence-82084a573ced8037.d: tests/prop_equivalence.rs

/root/repo/target/debug/deps/prop_equivalence-82084a573ced8037: tests/prop_equivalence.rs

tests/prop_equivalence.rs:
