//! Conversion of PowerPC instructions into VLIW RISC primitives.
//!
//! "Each operation is immediately scheduled in a VLIW … as soon as it is
//! disassembled from the binary original code, and converted into RISC
//! primitives (if a CISCy operation)" (paper §2). This module is the
//! PowerPC disassemble-and-convert front end, reached by the scheduler,
//! the oracle schedulers, and the traditional-compiler baseline through
//! the [`daisy_isa::Isa`] boundary.
//!
//! The produced primitives name *architected* resources; renaming into
//! the non-architected pool is the scheduler's job. The output types
//! ([`Converted`], [`Flow`], [`CondSpec`]) are the ISA-neutral ones from
//! the frontend boundary.

use crate::insn::{
    bo, Arith2Op, ArithOp, BranchKind, Insn, LogicImmOp, LogicOp, MemWidth, ShiftOp, UnaryOp,
};
use crate::reg::{CrField, Gpr};
use daisy_isa::convert::{CondSpec, Converted, Flow};
use daisy_vliw::op::{OpKind, Operation};
use daisy_vliw::reg::Reg;
use daisy_vliw::tree::IndirectVia;

fn g(r: Gpr) -> Reg {
    Reg::gpr(r)
}

/// Source for `ra|0` addressing: register, or `None` meaning literal 0.
fn base_or_zero(ra: Gpr) -> Option<Reg> {
    (ra.0 != 0).then(|| g(ra))
}

/// Appends the record-form compare (`cr0 ← result cmp 0`) used by `.`
/// instructions.
fn push_record(ops: &mut Vec<Operation>, result: Reg, addr: u32) {
    ops.push(
        Operation::new(OpKind::CmpSImm, addr)
            .dst(Reg::cr(CrField(0)))
            .src(result)
            .src(Reg::SO)
            .with_imm(0),
    );
}

/// Converts the instruction at `addr` into RISC primitives.
///
/// OE-form arithmetic (overflow-enable) is routed to the interpreter:
/// the workloads never use it, and modelling OV/SO updates as extra
/// primitives would only add parcels the paper's numbers do not contain.
pub fn convert(insn: &Insn, addr: u32) -> Converted {
    let op0 = |k: OpKind| Operation::new(k, addr);
    match *insn {
        Insn::Addi { rt, ra, si } => {
            let op = match base_or_zero(ra) {
                Some(b) => op0(OpKind::AddImm).dst(g(rt)).src(b).with_imm(i32::from(si)),
                None => op0(OpKind::Li).dst(g(rt)).with_imm(i32::from(si)),
            };
            Converted::fall(vec![op])
        }
        Insn::Addis { rt, ra, si } => {
            let v = i32::from(si) << 16;
            let op = match base_or_zero(ra) {
                Some(b) => op0(OpKind::AddImm).dst(g(rt)).src(b).with_imm(v),
                None => op0(OpKind::Li).dst(g(rt)).with_imm(v),
            };
            Converted::fall(vec![op])
        }
        Insn::Addic { rt, ra, si, rc } => {
            let mut ops = vec![op0(OpKind::AddImmC)
                .dst(g(rt))
                .dst2(Reg::CA)
                .src(g(ra))
                .with_imm(i32::from(si))];
            if rc {
                push_record(&mut ops, g(rt), addr);
            }
            Converted::fall(ops)
        }
        Insn::Subfic { rt, ra, si } => Converted::fall(vec![op0(OpKind::SubfImmC)
            .dst(g(rt))
            .dst2(Reg::CA)
            .src(g(ra))
            .with_imm(i32::from(si))]),
        Insn::Mulli { rt, ra, si } => {
            Converted::fall(vec![op0(OpKind::MulImm).dst(g(rt)).src(g(ra)).with_imm(i32::from(si))])
        }
        Insn::Arith { op, rt, ra, rb, oe, rc } => {
            if oe {
                return Converted::interp();
            }
            let (kind, carry) = match op {
                ArithOp::Add => (OpKind::Add, false),
                ArithOp::Addc => (OpKind::AddC, true),
                ArithOp::Adde => (OpKind::AddE, true),
                ArithOp::Subf => (OpKind::Subf, false),
                ArithOp::Subfc => (OpKind::SubfC, true),
                ArithOp::Subfe => (OpKind::SubfE, true),
                ArithOp::Mullw => (OpKind::Mul, false),
                ArithOp::Mulhw => (OpKind::Mulh, false),
                ArithOp::Mulhwu => (OpKind::Mulhu, false),
                ArithOp::Divw => (OpKind::Div, false),
                ArithOp::Divwu => (OpKind::Divu, false),
            };
            let mut o = op0(kind).dst(g(rt)).src(g(ra)).src(g(rb));
            if matches!(op, ArithOp::Adde | ArithOp::Subfe) {
                o = o.src(Reg::CA);
            }
            if carry {
                o = o.dst2(Reg::CA);
            }
            let mut ops = vec![o];
            if rc {
                push_record(&mut ops, g(rt), addr);
            }
            Converted::fall(ops)
        }
        Insn::Arith2 { op, rt, ra, oe, rc } => {
            if oe {
                return Converted::interp();
            }
            let mut ops = match op {
                Arith2Op::Neg => vec![op0(OpKind::Neg).dst(g(rt)).src(g(ra))],
                Arith2Op::Addze => {
                    vec![op0(OpKind::AddZe).dst(g(rt)).dst2(Reg::CA).src(g(ra)).src(Reg::CA)]
                }
                Arith2Op::Addme => {
                    vec![op0(OpKind::AddMe).dst(g(rt)).dst2(Reg::CA).src(g(ra)).src(Reg::CA)]
                }
                Arith2Op::Subfze => {
                    vec![op0(OpKind::SubfZe).dst(g(rt)).dst2(Reg::CA).src(g(ra)).src(Reg::CA)]
                }
                Arith2Op::Subfme => {
                    vec![op0(OpKind::SubfMe).dst(g(rt)).dst2(Reg::CA).src(g(ra)).src(Reg::CA)]
                }
            };
            if rc {
                push_record(&mut ops, g(rt), addr);
            }
            Converted::fall(ops)
        }
        Insn::Logic { op, ra, rs, rb, rc } => {
            let kind = match op {
                LogicOp::And => OpKind::And,
                LogicOp::Or => OpKind::Or,
                LogicOp::Xor => OpKind::Xor,
                LogicOp::Nand => OpKind::Nand,
                LogicOp::Nor => OpKind::Nor,
                LogicOp::Andc => OpKind::Andc,
                LogicOp::Orc => OpKind::Orc,
                LogicOp::Eqv => OpKind::Eqv,
            };
            let mut ops = vec![op0(kind).dst(g(ra)).src(g(rs)).src(g(rb))];
            if rc {
                push_record(&mut ops, g(ra), addr);
            }
            Converted::fall(ops)
        }
        Insn::LogicImm { op, ra, rs, ui } => {
            let (kind, imm2) = match op {
                LogicImmOp::Andi => (OpKind::AndImm, u32::from(ui)),
                LogicImmOp::Andis => (OpKind::AndImm, u32::from(ui) << 16),
                LogicImmOp::Ori => (OpKind::OrImm, u32::from(ui)),
                LogicImmOp::Oris => (OpKind::OrImm, u32::from(ui) << 16),
                LogicImmOp::Xori => (OpKind::XorImm, u32::from(ui)),
                LogicImmOp::Xoris => (OpKind::XorImm, u32::from(ui) << 16),
            };
            let mut ops = vec![op0(kind).dst(g(ra)).src(g(rs)).with_imm2(imm2)];
            if op.records() {
                push_record(&mut ops, g(ra), addr);
            }
            Converted::fall(ops)
        }
        Insn::Shift { op, ra, rs, rb, rc } => {
            let mut o = match op {
                ShiftOp::Slw => op0(OpKind::Sll).dst(g(ra)).src(g(rs)).src(g(rb)),
                ShiftOp::Srw => op0(OpKind::Srl).dst(g(ra)).src(g(rs)).src(g(rb)),
                ShiftOp::Sraw => op0(OpKind::Sra).dst(g(ra)).src(g(rs)).src(g(rb)),
            };
            if matches!(op, ShiftOp::Sraw) {
                o = o.dst2(Reg::CA);
            }
            let mut ops = vec![o];
            if rc {
                push_record(&mut ops, g(ra), addr);
            }
            Converted::fall(ops)
        }
        Insn::Srawi { ra, rs, sh, rc } => {
            let mut ops = vec![op0(OpKind::SraImm)
                .dst(g(ra))
                .dst2(Reg::CA)
                .src(g(rs))
                .with_imm(i32::from(sh))];
            if rc {
                push_record(&mut ops, g(ra), addr);
            }
            Converted::fall(ops)
        }
        Insn::Rlwinm { ra, rs, sh, mb, me, rc } => {
            let mut ops = vec![op0(OpKind::RotlImmMask)
                .dst(g(ra))
                .src(g(rs))
                .with_imm(i32::from(sh))
                .with_imm2(daisy_vliw::op::rlw_mask(mb, me))];
            if rc {
                push_record(&mut ops, g(ra), addr);
            }
            Converted::fall(ops)
        }
        Insn::Rlwimi { ra, rs, sh, mb, me, rc } => {
            let mut ops = vec![op0(OpKind::RotlImmInsert)
                .dst(g(ra))
                .src(g(rs))
                .src(g(ra))
                .with_imm(i32::from(sh))
                .with_imm2(daisy_vliw::op::rlw_mask(mb, me))];
            if rc {
                push_record(&mut ops, g(ra), addr);
            }
            Converted::fall(ops)
        }
        Insn::Rlwnm { ra, rs, rb, mb, me, rc } => {
            let mut ops = vec![op0(OpKind::RotlRegMask)
                .dst(g(ra))
                .src(g(rs))
                .src(g(rb))
                .with_imm2(daisy_vliw::op::rlw_mask(mb, me))];
            if rc {
                push_record(&mut ops, g(ra), addr);
            }
            Converted::fall(ops)
        }
        Insn::Unary { op, ra, rs, rc } => {
            let kind = match op {
                UnaryOp::Cntlzw => OpKind::Cntlz,
                UnaryOp::Extsb => OpKind::Extsb,
                UnaryOp::Extsh => OpKind::Exts,
            };
            let mut ops = vec![op0(kind).dst(g(ra)).src(g(rs))];
            if rc {
                push_record(&mut ops, g(ra), addr);
            }
            Converted::fall(ops)
        }
        Insn::Cmp { bf, signed, ra, rb } => {
            let kind = if signed { OpKind::CmpS } else { OpKind::CmpU };
            Converted::fall(vec![op0(kind).dst(Reg::cr(bf)).src(g(ra)).src(g(rb)).src(Reg::SO)])
        }
        Insn::CmpImm { bf, signed, ra, imm } => {
            let kind = if signed { OpKind::CmpSImm } else { OpKind::CmpUImm };
            Converted::fall(vec![op0(kind).dst(Reg::cr(bf)).src(g(ra)).src(Reg::SO).with_imm(imm)])
        }
        Insn::Load { width, algebraic, update, indexed, rt, ra, rb, d } => {
            let mut l = op0(OpKind::Load { width, algebraic }).dst(g(rt));
            if let Some(b) = base_or_zero(ra) {
                l = l.src(b);
            }
            if indexed {
                l = l.src(g(rb));
            } else {
                l = l.with_imm(i32::from(d));
            }
            let mut ops = vec![l];
            if update {
                // EA write-back; faults on the load leave ra untouched
                // because commits are in program order.
                let upd = if indexed {
                    op0(OpKind::Add).dst(g(ra)).src(g(ra)).src(g(rb))
                } else {
                    op0(OpKind::AddImm).dst(g(ra)).src(g(ra)).with_imm(i32::from(d))
                };
                ops.push(upd);
            }
            Converted::fall(ops)
        }
        Insn::Store { width, update, indexed, rs, ra, rb, d } => {
            // Store sources: value, then address registers (a missing
            // base is the architected `ra = 0` literal-zero form).
            let mut s = op0(OpKind::Store { width }).src(g(rs));
            if let Some(b) = base_or_zero(ra) {
                s = s.src(b);
            }
            if indexed {
                s = s.src(g(rb));
            } else {
                s = s.with_imm(i32::from(d));
            }
            let mut ops = vec![s];
            if update {
                let upd = if indexed {
                    op0(OpKind::Add).dst(g(ra)).src(g(ra)).src(g(rb))
                } else {
                    op0(OpKind::AddImm).dst(g(ra)).src(g(ra)).with_imm(i32::from(d))
                };
                ops.push(upd);
            }
            Converted::fall(ops)
        }
        Insn::Lmw { rt, ra, d } => {
            // CISC decomposition: one load primitive per register.
            let mut ops = Vec::new();
            for (i, r) in (rt.0..32).enumerate() {
                let mut l = op0(OpKind::Load { width: MemWidth::Word, algebraic: false })
                    .dst(Reg(r))
                    .with_imm(i32::from(d) + 4 * i as i32);
                if let Some(b) = base_or_zero(ra) {
                    l = l.src(b);
                }
                ops.push(l);
            }
            Converted::fall(ops)
        }
        Insn::Stmw { rs, ra, d } => {
            let mut ops = Vec::new();
            for (i, r) in (rs.0..32).enumerate() {
                let mut s = op0(OpKind::Store { width: MemWidth::Word }).src(Reg(r));
                if let Some(b) = base_or_zero(ra) {
                    s = s.src(b);
                }
                ops.push(s.with_imm(i32::from(d) + 4 * i as i32));
            }
            Converted::fall(ops)
        }
        Insn::BranchI { lk, .. } => {
            // invariant: `branch_info` is total over branch opcodes, and
            // an I-form branch is by definition direct.
            let Some(info) = insn.branch_info(addr) else { unreachable!() };
            let BranchKind::Direct(target) = info.kind else { unreachable!() };
            Converted { ops: Vec::new(), flow: Flow::Jump { target }, links: lk }
        }
        Insn::BranchC { bo: b, bi, bd: _, lk, .. } => {
            // invariant: B-form conditional branches always decode to a
            // direct target.
            let Some(info) = insn.branch_info(addr) else { unreachable!() };
            let BranchKind::Direct(target) = info.kind else { unreachable!() };
            convert_cond_branch(addr, b, bi, lk, BranchDest::Direct(target))
        }
        Insn::BranchClr { bo: b, bi, lk } => {
            convert_cond_branch(addr, b, bi, lk, BranchDest::Via(IndirectVia::Lr))
        }
        Insn::BranchCctr { bo: b, bi, lk } => {
            if !bo::ignores_ctr(b) {
                // bcctr with CTR decrement is an invalid form.
                return Converted::interp();
            }
            convert_cond_branch(addr, b | 0b00100, bi, lk, BranchDest::Via(IndirectVia::Ctr))
        }
        Insn::CrLogic { op, bt, ba, bb } => Converted::fall(vec![op0(OpKind::CrBit {
            op,
            bt: bt.within(),
            ba: ba.within(),
            bb: bb.within(),
        })
        .dst(Reg::cr(bt.field()))
        .src(Reg::cr(ba.field()))
        .src(Reg::cr(bb.field()))
        .src(Reg::cr(bt.field()))]),
        Insn::Mcrf { bf, bfa } => {
            Converted::fall(vec![op0(OpKind::Copy).dst(Reg::cr(bf)).src(Reg::cr(bfa))])
        }
        Insn::Mfcr { rt } => {
            // Decompose into an insert chain over the 8 fields.
            let mut ops = vec![op0(OpKind::Li).dst(g(rt)).with_imm(0)];
            for f in 0..8u8 {
                ops.push(
                    op0(OpKind::InsertField)
                        .dst(g(rt))
                        .src(g(rt))
                        .src(Reg::cr(CrField(f)))
                        .with_imm(i32::from(f)),
                );
            }
            Converted::fall(ops)
        }
        Insn::Mtcrf { fxm, rs } => {
            // One mtcrf2 (paper Appendix D) per selected field.
            let mut ops = Vec::new();
            for f in 0..8u8 {
                if fxm & (0x80 >> f) != 0 {
                    ops.push(
                        op0(OpKind::ExtractField)
                            .dst(Reg::cr(CrField(f)))
                            .src(g(rs))
                            .with_imm(i32::from(f)),
                    );
                }
            }
            Converted::fall(ops)
        }
        Insn::Mfspr { rt, spr } => match spr {
            crate::reg::Spr::Lr => Converted::fall(vec![op0(OpKind::Copy).dst(g(rt)).src(Reg::LR)]),
            crate::reg::Spr::Ctr => {
                Converted::fall(vec![op0(OpKind::Copy).dst(g(rt)).src(Reg::CTR)])
            }
            crate::reg::Spr::Xer => Converted::fall(vec![op0(OpKind::XerCompose)
                .dst(g(rt))
                .src(Reg::CA)
                .src(Reg::OV)
                .src(Reg::SO)]),
            _ => Converted::interp(),
        },
        Insn::Mtspr { spr, rs } => match spr {
            crate::reg::Spr::Lr => Converted::fall(vec![op0(OpKind::Copy).dst(Reg::LR).src(g(rs))]),
            crate::reg::Spr::Ctr => {
                Converted::fall(vec![op0(OpKind::Copy).dst(Reg::CTR).src(g(rs))])
            }
            crate::reg::Spr::Xer => Converted::fall(vec![
                op0(OpKind::XerExtract).dst(Reg::CA).src(g(rs)).with_imm(29),
                op0(OpKind::XerExtract).dst(Reg::OV).src(g(rs)).with_imm(30),
                op0(OpKind::XerExtract).dst(Reg::SO).src(g(rs)).with_imm(31),
            ]),
            _ => Converted::interp(),
        },
        Insn::Sync | Insn::Isync | Insn::Eieio => {
            // Strongly consistent memory assumed (paper Appendix E:
            // "Assume a strongly consistent memory system, not requiring
            // stop at a serializing op").
            Converted::fall(Vec::new())
        }
        Insn::Tw { to, ra, rb } => {
            Converted::fall(vec![op0(OpKind::TrapIf { to }).src(g(ra)).src(g(rb))])
        }
        Insn::Twi { to, ra, si } => {
            Converted::fall(vec![op0(OpKind::TrapIf { to }).src(g(ra)).with_imm(i32::from(si))])
        }
        Insn::Mfmsr { .. } | Insn::Mtmsr { .. } | Insn::Sc | Insn::Rfi | Insn::Invalid(_) => {
            Converted::interp()
        }
    }
}

enum BranchDest {
    Direct(u32),
    Via(IndirectVia),
}

fn convert_cond_branch(
    addr: u32,
    b: u8,
    bi: crate::reg::CrBit,
    lk: bool,
    dest: BranchDest,
) -> Converted {
    let mut ops = Vec::new();
    let mut cond_compare = false;
    // CTR-decrementing forms: explicit decrement + compare, so the
    // count can rename and loop iterations overlap (paper Appendix D).
    let ctr_cond = if !bo::ignores_ctr(b) {
        let dec = Operation::new(OpKind::AddImm, addr).dst(Reg::CTR).src(Reg::CTR).with_imm(-1);
        ops.push(dec);
        // Compare the *new* CTR against zero. The scheduler points this
        // at the renamed decrement result.
        let cmp = Operation::new(OpKind::CmpSImm, addr)
            .dst(Reg::cr(CrField(0))) // placeholder dest; scheduler renames
            .src(Reg::CTR)
            .src(Reg::SO)
            .with_imm(0);
        ops.push(cmp);
        cond_compare = true;
        Some(CondSpec {
            field: Reg::cr(CrField(0)), // placeholder; scheduler substitutes
            mask: 0b0010,               // EQ bit of the compare
            want_set: bo::wants_ctr_zero(b),
        })
    } else {
        None
    };
    let cr_cond = if bo::ignores_cond(b) {
        None
    } else {
        Some(CondSpec {
            field: Reg::cr(bi.field()),
            mask: bi.field_mask(),
            want_set: bo::wants_true(b),
        })
    };
    // Combined CTR+condition forms (bdnzt …) are rare; route to the
    // interpreter rather than build two-level conditions.
    let cond = match (ctr_cond, cr_cond) {
        (Some(_), Some(_)) => return Converted::interp(),
        (Some(c), None) | (None, Some(c)) => Some(c),
        (None, None) => None,
    };
    let flow = match (cond, dest) {
        (None, BranchDest::Direct(target)) => Flow::Jump { target },
        (None, BranchDest::Via(via)) => Flow::IndirectJump { via },
        (Some(cond), BranchDest::Direct(target)) => Flow::CondJump { cond, target, cond_compare },
        (Some(cond), BranchDest::Via(via)) => Flow::CondIndirect { cond, via, cond_compare },
    };
    Converted { ops, flow, links: lk }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::CrBit;

    #[test]
    fn add_converts_to_one_primitive() {
        let c = convert(
            &Insn::Arith {
                op: ArithOp::Add,
                rt: Gpr(3),
                ra: Gpr(4),
                rb: Gpr(5),
                oe: false,
                rc: false,
            },
            0x100,
        );
        assert_eq!(c.ops.len(), 1);
        assert_eq!(c.ops[0].kind, OpKind::Add);
        assert_eq!(c.ops[0].dest, Some(Reg::gpr(Gpr(3))));
        assert_eq!(c.flow, Flow::Fall);
    }

    #[test]
    fn record_form_adds_compare() {
        let c = convert(
            &Insn::Arith {
                op: ArithOp::Add,
                rt: Gpr(3),
                ra: Gpr(4),
                rb: Gpr(5),
                oe: false,
                rc: true,
            },
            0,
        );
        assert_eq!(c.ops.len(), 2);
        assert_eq!(c.ops[1].kind, OpKind::CmpSImm);
        assert_eq!(c.ops[1].dest, Some(Reg::cr(CrField(0))));
        assert_eq!(c.ops[1].srcs()[0], Reg::gpr(Gpr(3)));
    }

    #[test]
    fn lmw_decomposes_per_register() {
        let c = convert(&Insn::Lmw { rt: Gpr(28), ra: Gpr(1), d: 8 }, 0);
        assert_eq!(c.ops.len(), 4);
        assert_eq!(c.ops[0].dest, Some(Reg::gpr(Gpr(28))));
        assert_eq!(c.ops[3].dest, Some(Reg::gpr(Gpr(31))));
        assert_eq!(c.ops[3].imm, 8 + 12);
    }

    #[test]
    fn bdnz_emits_decrement_and_compare() {
        let c = convert(
            &Insn::BranchC { bo: bo::DNZ, bi: CrBit(0), bd: -8, aa: false, lk: false },
            0x100,
        );
        assert_eq!(c.ops.len(), 2);
        assert_eq!(c.ops[0].dest, Some(Reg::CTR));
        assert_eq!(c.ops[0].imm, -1);
        match c.flow {
            Flow::CondJump { cond, target, cond_compare } => {
                assert_eq!(target, 0xF8);
                assert!(cond_compare);
                assert_eq!(cond.mask, 0b0010);
                assert!(!cond.want_set); // bdnz: taken when CTR != 0
            }
            other => panic!("unexpected flow {other:?}"),
        }
    }

    #[test]
    fn blr_is_indirect_via_lr() {
        let c = convert(&Insn::BranchClr { bo: bo::ALWAYS, bi: CrBit(0), lk: false }, 0);
        assert!(c.ops.is_empty());
        assert_eq!(c.flow, Flow::IndirectJump { via: IndirectVia::Lr });
    }

    #[test]
    fn conditional_blr() {
        let c = convert(&Insn::BranchClr { bo: bo::IF_FALSE, bi: CrBit(2), lk: false }, 0);
        match c.flow {
            Flow::CondIndirect { cond, via, cond_compare } => {
                assert_eq!(via, IndirectVia::Lr);
                assert!(!cond_compare);
                assert_eq!(cond.mask, 0b0010);
                assert!(!cond.want_set);
            }
            other => panic!("unexpected flow {other:?}"),
        }
    }

    #[test]
    fn privileged_goes_to_interpreter() {
        assert_eq!(convert(&Insn::Rfi, 0).flow, Flow::Interp);
        assert_eq!(convert(&Insn::Sc, 0).flow, Flow::Interp);
        assert_eq!(
            convert(&Insn::Mfspr { rt: Gpr(1), spr: crate::reg::Spr::Srr0 }, 0).flow,
            Flow::Interp
        );
    }

    #[test]
    fn sync_is_free() {
        let c = convert(&Insn::Sync, 0);
        assert!(c.ops.is_empty());
        assert_eq!(c.flow, Flow::Fall);
    }

    #[test]
    fn mfcr_chain_length() {
        let c = convert(&Insn::Mfcr { rt: Gpr(9) }, 0);
        assert_eq!(c.ops.len(), 9);
    }

    #[test]
    fn bl_marks_link() {
        let c = convert(&Insn::BranchI { li: 0x40, aa: false, lk: true }, 0x1000);
        assert!(c.links);
        assert_eq!(c.flow, Flow::Jump { target: 0x1040 });
    }
}
