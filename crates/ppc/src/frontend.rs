//! The PowerPC implementation of the guest-agnostic frontend boundary.
//!
//! [`PpcIsa`] is the zero-sized marker the translation core is
//! instantiated with (`DaisySystem<PpcIsa>`); the [`daisy_isa::Isa`]
//! impl wires the decoder, converter, and branch analysis to the
//! boundary, and the [`daisy_isa::GuestCpu`] impl on [`Cpu`] maps the
//! neutral exception vocabulary onto the architected PowerPC vectors.

use crate::decode::{decode, DecodeCache};
use crate::encode::encode;
use crate::insn::Insn;
use crate::interp::Cpu;
use crate::mem::Memory;
use crate::reg::{msr_bits, xer_bits, CrField};
use crate::vectors;
use daisy_isa::convert::{BranchInfo, Converted};
use daisy_isa::{Event, Exception, IsaId, StopReason};
use daisy_vliw::reg::Reg;
use daisy_vliw::regfile::RegFile;

/// Marker type for the PowerPC (subset) guest ISA.
#[derive(Debug, Clone, Copy, Default)]
pub struct PpcIsa;

/// Words that never decode to a valid instruction (opcode 0 and the
/// reserved opcode-6 group), used by the fault-injection harness.
static ILLEGAL_WORDS: [u32; 3] = [0x0000_0000, 0x0000_0001, 0x1800_0000];

impl daisy_isa::Isa for PpcIsa {
    type Insn = Insn;
    type Cpu = Cpu;
    // The PowerPC decoder is total: unknown words map to
    // `Insn::Invalid`, which converts to an interpreter exit.
    type DecodeError = std::convert::Infallible;

    const ID: IsaId = IsaId::PPC;
    const NAME: &'static str = "ppc";

    fn decode(word: u32) -> Result<Insn, Self::DecodeError> {
        Ok(decode(word))
    }

    fn convert(insn: &Insn, addr: u32) -> Converted {
        crate::convert::convert(insn, addr)
    }

    fn branch_info(insn: &Insn, pc: u32) -> Option<BranchInfo> {
        insn.branch_info(pc)
    }

    fn ends_interp_window(insn: &Insn) -> bool {
        matches!(insn, Insn::Rfi)
    }

    fn disasm(word: u32) -> String {
        decode(word).to_string()
    }

    fn illegal_words() -> &'static [u32] {
        &ILLEGAL_WORDS
    }

    fn interrupt_return_word() -> u32 {
        encode(&Insn::Rfi)
    }

    fn external_vector() -> u32 {
        vectors::EXTERNAL
    }
}

impl daisy_isa::GuestCpu for Cpu {
    type Insn = Insn;

    fn new(entry: u32) -> Cpu {
        Cpu::new(entry)
    }

    fn pc(&self) -> u32 {
        self.pc
    }

    fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    fn instret(&self) -> u64 {
        self.ninstrs
    }

    fn vectored(&self) -> bool {
        self.vectored
    }

    fn set_vectored(&mut self, v: bool) {
        self.vectored = v;
    }

    fn fetch(&self, mem: &Memory) -> Result<Insn, Event> {
        Cpu::fetch(self, mem)
    }

    fn fetch_cached(&self, mem: &Memory, cache: &mut DecodeCache) -> Result<Insn, Event> {
        Cpu::fetch_cached(self, mem, cache)
    }

    fn execute(&mut self, mem: &mut Memory, insn: Insn) -> Event {
        Cpu::execute(self, mem, insn)
    }

    fn handle_event(&mut self, ev: Event) -> Option<StopReason> {
        Cpu::handle_event(self, ev)
    }

    fn interp_run(&mut self, mem: &mut Memory, max: u64) -> StopReason {
        // `run` is currently infallible (see `MemTooSmall`).
        self.run(mem, max).unwrap_or(StopReason::MaxInstrs)
    }

    fn deliver(&mut self, e: Exception, at: u32) {
        let vector = match e {
            Exception::External => vectors::EXTERNAL,
            Exception::Syscall => vectors::SYSCALL,
            Exception::Program | Exception::Trap => vectors::PROGRAM,
            Exception::Data { addr, write } => {
                self.record_data_fault_regs(addr, write);
                vectors::DSI
            }
            Exception::Instruction => vectors::ISI,
        };
        Cpu::deliver(self, vector, at);
    }

    fn record_data_fault(&mut self, addr: u32, write: bool) {
        self.record_data_fault_regs(addr, write);
    }

    fn interrupts_enabled(&self) -> bool {
        self.msr & msr_bits::EE != 0
    }

    fn enable_interrupts(&mut self) {
        self.msr |= msr_bits::EE;
    }

    fn effective_address(&self, insn: &Insn) -> Option<u32> {
        let base = |ra: crate::reg::Gpr| {
            if ra.0 == 0 {
                0
            } else {
                self.gpr[ra.0 as usize]
            }
        };
        match *insn {
            Insn::Load { indexed, ra, rb, d, .. } | Insn::Store { indexed, ra, rb, d, .. } => {
                Some(if indexed {
                    base(ra).wrapping_add(self.gpr[rb.0 as usize])
                } else {
                    base(ra).wrapping_add(d as i32 as u32)
                })
            }
            Insn::Lmw { ra, d, .. } | Insn::Stmw { ra, d, .. } => {
                Some(base(ra).wrapping_add(d as i32 as u32))
            }
            _ => None,
        }
    }

    fn fill_regfile(&self, rf: &mut RegFile) {
        for i in 0..32 {
            rf.set(Reg(i as u8), self.gpr[i]);
        }
        for c in 0..8u8 {
            rf.set(Reg::cr(CrField(c)), self.cr_field(CrField(c)));
        }
        rf.set(Reg::LR, self.lr);
        rf.set(Reg::CTR, self.ctr);
        rf.set(Reg::CA, u32::from(self.xer & xer_bits::CA != 0));
        rf.set(Reg::OV, u32::from(self.xer & xer_bits::OV != 0));
        rf.set(Reg::SO, u32::from(self.xer & xer_bits::SO != 0));
    }

    fn write_back(&mut self, rf: &RegFile) {
        for i in 0..32 {
            self.gpr[i] = rf.get(Reg(i as u8));
        }
        for c in 0..8u8 {
            self.set_cr_field(CrField(c), rf.get(Reg::cr(CrField(c))));
        }
        self.lr = rf.get(Reg::LR);
        self.ctr = rf.get(Reg::CTR);
        let mut xer = self.xer & !(xer_bits::CA | xer_bits::OV | xer_bits::SO);
        if rf.get(Reg::CA) & 1 != 0 {
            xer |= xer_bits::CA;
        }
        if rf.get(Reg::OV) & 1 != 0 {
            xer |= xer_bits::OV;
        }
        if rf.get(Reg::SO) & 1 != 0 {
            xer |= xer_bits::SO;
        }
        self.xer = xer;
    }

    fn state_diff(&self, other: &Cpu, skip_resume: bool) -> Option<String> {
        for (i, (a, b)) in self.gpr.iter().zip(other.gpr.iter()).enumerate() {
            if a != b {
                return Some(format!("r{i}: {a:#x} vs {b:#x}"));
            }
        }
        let named: [(&str, u32, u32); 8] = [
            ("cr", self.cr, other.cr),
            ("lr", self.lr, other.lr),
            ("ctr", self.ctr, other.ctr),
            ("xer", self.xer, other.xer),
            ("msr", self.msr, other.msr),
            ("pc", self.pc, other.pc),
            ("dar", self.dar, other.dar),
            ("dsisr", self.dsisr, other.dsisr),
        ];
        for (name, a, b) in named {
            if a != b {
                return Some(format!("{name}: {a:#x} vs {b:#x}"));
            }
        }
        if !skip_resume {
            if self.srr0 != other.srr0 {
                return Some(format!("srr0: {:#x} vs {:#x}", self.srr0, other.srr0));
            }
            if self.srr1 != other.srr1 {
                return Some(format!("srr1: {:#x} vs {:#x}", self.srr1, other.srr1));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Gpr;
    use daisy_isa::{GuestCpu, Isa};

    #[test]
    fn regfile_roundtrip_through_cpu() {
        let mut cpu = Cpu::new(0x1000);
        cpu.gpr[5] = 0xDEAD;
        cpu.set_cr_field(CrField(2), 0b1010);
        cpu.lr = 0x44;
        cpu.ctr = 7;
        cpu.xer = xer_bits::CA | xer_bits::SO;

        let mut f = RegFile::new();
        cpu.fill_regfile(&mut f);
        assert_eq!(f.get(Reg::gpr(Gpr(5))), 0xDEAD);
        assert_eq!(f.get(Reg::cr(CrField(2))), 0b1010);
        assert_eq!(f.get(Reg::CA), 1);
        assert_eq!(f.get(Reg::OV), 0);
        assert_eq!(f.get(Reg::SO), 1);

        let mut cpu2 = Cpu::new(0);
        cpu2.write_back(&f);
        assert_eq!(cpu2.gpr[5], 0xDEAD);
        assert_eq!(cpu2.cr_field(CrField(2)), 0b1010);
        assert_eq!(cpu2.lr, 0x44);
        assert_eq!(cpu2.ctr, 7);
        assert_eq!(cpu2.xer, xer_bits::CA | xer_bits::SO);
    }

    #[test]
    fn illegal_words_do_not_decode() {
        for &w in PpcIsa::illegal_words() {
            assert!(matches!(decode(w), Insn::Invalid(_)), "{w:#010x} decoded");
        }
    }

    #[test]
    fn exception_mapping_matches_vectors() {
        let mut cpu = Cpu::new(0x1000);
        GuestCpu::deliver(&mut cpu, Exception::Syscall, 0x1004);
        assert_eq!(cpu.pc, vectors::SYSCALL);
        assert_eq!(cpu.srr0, 0x1004);

        let mut cpu = Cpu::new(0x1000);
        GuestCpu::deliver(&mut cpu, Exception::Data { addr: 0x80, write: true }, 0x1000);
        assert_eq!(cpu.pc, vectors::DSI);
        assert_eq!(cpu.dar, 0x80);
        assert_eq!(cpu.dsisr, 0x4200_0000);
    }

    #[test]
    fn interrupt_return_word_is_rfi() {
        assert_eq!(decode(PpcIsa::interrupt_return_word()), Insn::Rfi);
    }
}
