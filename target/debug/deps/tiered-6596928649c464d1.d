/root/repo/target/debug/deps/tiered-6596928649c464d1.d: crates/bench/benches/tiered.rs

/root/repo/target/debug/deps/tiered-6596928649c464d1: crates/bench/benches/tiered.rs

crates/bench/benches/tiered.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
