/root/repo/target/debug/deps/daisy_baseline-234b2f3725848cca.d: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

/root/repo/target/debug/deps/libdaisy_baseline-234b2f3725848cca.rlib: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

/root/repo/target/debug/deps/libdaisy_baseline-234b2f3725848cca.rmeta: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

crates/baseline/src/lib.rs:
crates/baseline/src/ppc604e.rs:
crates/baseline/src/profile.rs:
crates/baseline/src/trad.rs:
