/root/repo/target/debug/examples/precise_exceptions-7a5806b752e00cf7.d: examples/precise_exceptions.rs

/root/repo/target/debug/examples/precise_exceptions-7a5806b752e00cf7: examples/precise_exceptions.rs

examples/precise_exceptions.rs:
