/root/repo/target/release/deps/paper_fidelity-3ba124f755142177.d: crates/core/tests/paper_fidelity.rs

/root/repo/target/release/deps/paper_fidelity-3ba124f755142177: crates/core/tests/paper_fidelity.rs

crates/core/tests/paper_fidelity.rs:
