/root/repo/target/debug/deps/chaining-5882144382900286.d: tests/chaining.rs Cargo.toml

/root/repo/target/debug/deps/libchaining-5882144382900286.rmeta: tests/chaining.rs Cargo.toml

tests/chaining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
