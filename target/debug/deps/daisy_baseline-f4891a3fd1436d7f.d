/root/repo/target/debug/deps/daisy_baseline-f4891a3fd1436d7f.d: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

/root/repo/target/debug/deps/libdaisy_baseline-f4891a3fd1436d7f.rmeta: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

crates/baseline/src/lib.rs:
crates/baseline/src/ppc604e.rs:
crates/baseline/src/profile.rs:
crates/baseline/src/trad.rs:
