//! Architected register names of the PowerPC base architecture.

use std::fmt;

// The GPR and CR-field names are shared with the VLIW's unified
// register file and live at that layer; they keep their historical
// paths here.
pub use daisy_vliw::reg::{CrField, Gpr};

/// Bit masks within a 4-bit CR field value.
pub mod cr_bits {
    /// Less than.
    pub const LT: u32 = 0b1000;
    /// Greater than.
    pub const GT: u32 = 0b0100;
    /// Equal.
    pub const EQ: u32 = 0b0010;
    /// Summary overflow copy.
    pub const SO: u32 = 0b0001;
}

/// A single condition-register bit, numbered 0–31 (bit 0 = cr0.LT).
///
/// Conditional branches (`bc`) and CR-logical operations (`crand` …)
/// address the CR at bit granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CrBit(pub u8);

impl CrBit {
    /// Builds a CR bit from a field and a bit index within the field
    /// (0 = LT, 1 = GT, 2 = EQ, 3 = SO).
    pub fn new(field: CrField, bit: u8) -> CrBit {
        CrBit(field.0 * 4 + bit)
    }

    /// The CR field this bit belongs to.
    pub fn field(self) -> CrField {
        CrField(self.0 / 4)
    }

    /// Index within the field: 0 = LT, 1 = GT, 2 = EQ, 3 = SO.
    pub fn within(self) -> u8 {
        self.0 % 4
    }

    /// Mask of this bit inside a 4-bit field value.
    pub fn field_mask(self) -> u32 {
        0b1000 >> self.within()
    }
}

impl fmt::Display for CrBit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = ["lt", "gt", "eq", "so"];
        write!(f, "cr{}.{}", self.field().0, names[self.within() as usize])
    }
}

/// Special-purpose registers reachable through `mfspr`/`mtspr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Spr {
    /// Fixed-point exception register (CA/OV/SO bits).
    Xer,
    /// Link register.
    Lr,
    /// Count register.
    Ctr,
    /// Save/restore register 0 (interrupted address).
    Srr0,
    /// Save/restore register 1 (interrupted MSR).
    Srr1,
    /// Data address register (faulting data address).
    Dar,
    /// Data storage interrupt status register.
    Dsisr,
    /// SPR general 0 (scratch for OS handlers).
    Sprg0,
    /// SPR general 1.
    Sprg1,
}

impl Spr {
    /// The architected SPR number used in the instruction encoding.
    pub fn number(self) -> u16 {
        match self {
            Spr::Xer => 1,
            Spr::Lr => 8,
            Spr::Ctr => 9,
            Spr::Dsisr => 18,
            Spr::Dar => 19,
            Spr::Srr0 => 26,
            Spr::Srr1 => 27,
            Spr::Sprg0 => 272,
            Spr::Sprg1 => 273,
        }
    }

    /// Decodes an SPR number; returns `None` for unsupported SPRs.
    pub fn from_number(n: u16) -> Option<Spr> {
        Some(match n {
            1 => Spr::Xer,
            8 => Spr::Lr,
            9 => Spr::Ctr,
            18 => Spr::Dsisr,
            19 => Spr::Dar,
            26 => Spr::Srr0,
            27 => Spr::Srr1,
            272 => Spr::Sprg0,
            273 => Spr::Sprg1,
            _ => return None,
        })
    }

    /// True if user-mode code may touch this SPR.
    pub fn user_accessible(self) -> bool {
        matches!(self, Spr::Xer | Spr::Lr | Spr::Ctr)
    }
}

impl fmt::Display for Spr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Spr::Xer => "xer",
            Spr::Lr => "lr",
            Spr::Ctr => "ctr",
            Spr::Srr0 => "srr0",
            Spr::Srr1 => "srr1",
            Spr::Dar => "dar",
            Spr::Dsisr => "dsisr",
            Spr::Sprg0 => "sprg0",
            Spr::Sprg1 => "sprg1",
        };
        f.write_str(s)
    }
}

/// XER bit masks (big-endian PowerPC bit numbering: SO is bit 0).
pub mod xer_bits {
    /// Summary overflow.
    pub const SO: u32 = 0x8000_0000;
    /// Overflow.
    pub const OV: u32 = 0x4000_0000;
    /// Carry.
    pub const CA: u32 = 0x2000_0000;
}

/// MSR bit masks (subset used by the reproduction).
pub mod msr_bits {
    /// External interrupts enabled.
    pub const EE: u32 = 0x0000_8000;
    /// Problem (user) state when set; supervisor when clear.
    pub const PR: u32 = 0x0000_4000;
    /// Instruction relocation enabled.
    pub const IR: u32 = 0x0000_0020;
    /// Data relocation enabled.
    pub const DR: u32 = 0x0000_0010;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cr_bit_roundtrip() {
        for f in 0..8u8 {
            for b in 0..4u8 {
                let bit = CrBit::new(CrField(f), b);
                assert_eq!(bit.field(), CrField(f));
                assert_eq!(bit.within(), b);
            }
        }
    }

    #[test]
    fn cr_bit_field_mask() {
        assert_eq!(CrBit::new(CrField(0), 0).field_mask(), cr_bits::LT);
        assert_eq!(CrBit::new(CrField(3), 1).field_mask(), cr_bits::GT);
        assert_eq!(CrBit::new(CrField(7), 2).field_mask(), cr_bits::EQ);
        assert_eq!(CrBit::new(CrField(1), 3).field_mask(), cr_bits::SO);
    }

    #[test]
    fn spr_numbers_roundtrip() {
        for spr in [
            Spr::Xer,
            Spr::Lr,
            Spr::Ctr,
            Spr::Srr0,
            Spr::Srr1,
            Spr::Dar,
            Spr::Dsisr,
            Spr::Sprg0,
            Spr::Sprg1,
        ] {
            assert_eq!(Spr::from_number(spr.number()), Some(spr));
        }
        assert_eq!(Spr::from_number(999), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Gpr(13).to_string(), "r13");
        assert_eq!(CrField(2).to_string(), "cr2");
        assert_eq!(CrBit::new(CrField(0), 2).to_string(), "cr0.eq");
        assert_eq!(Spr::Lr.to_string(), "lr");
    }
}
