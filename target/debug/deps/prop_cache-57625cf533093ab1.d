/root/repo/target/debug/deps/prop_cache-57625cf533093ab1.d: crates/cachesim/tests/prop_cache.rs

/root/repo/target/debug/deps/prop_cache-57625cf533093ab1: crates/cachesim/tests/prop_cache.rs

crates/cachesim/tests/prop_cache.rs:
