//! Emulated base-architecture physical memory and address translation.
//!
//! Two pieces of paper machinery live here:
//!
//! * **Read-only (translated) bits** (§3.2): each 4 KiB unit of base
//!   physical memory carries a bit, invisible to the base architecture,
//!   that the VMM sets when it translates code from that unit. Stores to
//!   marked units are recorded so the VMM can invalidate the translation
//!   (self-modifying code, overlays, program loads).
//! * **The base architecture's own virtual memory** ([`Mmu`]): when the
//!   emulated MSR enables relocation, data and instruction accesses go
//!   through a page table; a missing or protection-violating mapping
//!   raises the storage interrupts that the VMM forwards to the emulated
//!   operating system (§3.3).

use crate::PAGE_SIZE;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;

/// A failed physical memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting physical address.
    pub addr: u32,
    /// True when the access was a store.
    pub write: bool,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fault at physical address {:#010x}",
            if self.write { "store" } else { "load" },
            self.addr
        )
    }
}

impl std::error::Error for MemFault {}

/// A guest-physical MMIO device bus attached above RAM.
///
/// Devices are modeled functionally: every access carries `now`, the
/// count of retired guest instructions, and device state must be a pure
/// function of (`now`, the history of writes with their times). That
/// discipline is what lets the injection harness replay a translated
/// run's interrupt deliveries on the interpreter oracle and get
/// bit-identical device state back — no hidden per-poll counters may
/// advance differently between two runs that retire the same
/// instruction stream.
///
/// Reads may have side effects (UART RX pop, IRQ claim), which is why
/// translated code must never issue them speculatively: every engine
/// tier bails to the interpreter *before* touching the window (see
/// `GroupExit::Mmio` in the core crate).
pub trait Bus: fmt::Debug {
    /// Reads `width` (1, 2, or 4) bytes at `offset` within the window.
    fn read(&mut self, now: u64, offset: u32, width: u32) -> u32;
    /// Writes `width` bytes at `offset` within the window.
    fn write(&mut self, now: u64, offset: u32, width: u32, value: u32);
    /// Level of the aggregated external-interrupt line at `now`.
    fn irq_level(&mut self, now: u64) -> bool;
    /// Canonical serialization of all device state, for bit-for-bit
    /// diffing against an oracle run.
    fn snapshot(&mut self, now: u64) -> Vec<u8>;
    /// Clones the device tree (supports `Memory: Clone`).
    fn clone_box(&self) -> Box<dyn Bus>;
    /// Concrete-type access for harnesses (UART transcript readout, RX
    /// injection) that know which device tree they attached.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
    /// Host-side out-of-band input at time `now` — e.g. a fuzzing
    /// harness pushing a UART RX byte. The device interprets `data`
    /// however it likes; devices with no input stream ignore it (the
    /// default). Injections count as writes for the purity discipline:
    /// a replay must repeat them at the same `now` values.
    fn host_inject(&mut self, _now: u64, _data: u32) {}
}

impl Clone for Box<dyn Bus> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The attached window: device tree plus the current device time.
///
/// Interior mutability keeps `Memory`'s read accessors `&self` even
/// though device reads mutate device state; the emulator is
/// single-threaded, so the `RefCell` is never contended.
#[derive(Debug, Clone)]
struct MmioWindow {
    now: Cell<u64>,
    dev: RefCell<Box<dyn Bus>>,
}

/// Emulated physical memory of the base architecture.
///
/// This corresponds to the identity-mapped low section of the VLIW
/// virtual address space in paper Fig. 3.1. The VLIW's own translated
/// code lives *outside* this array (in the VMM's data structures), just
/// as the paper keeps it in a region the base architecture cannot see.
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    /// Per-4K-page "read-only because translated" bit (§3.2).
    translated: Vec<bool>,
    /// Pages whose translated bit was set when a store hit them, in
    /// order of first occurrence since the last [`Memory::drain_code_writes`].
    code_writes: Vec<u32>,
    code_write_seen: Vec<bool>,
    /// Base guest-physical address of the MMIO window (`u32::MAX` when
    /// no bus is attached — makes `is_mmio_inline` a single compare).
    mmio_base: u32,
    /// Window length in bytes (0 when no bus is attached).
    mmio_len: u32,
    bus: Option<MmioWindow>,
}

impl Memory {
    /// Creates `size` bytes of zeroed physical memory (rounded up to a
    /// whole number of pages).
    pub fn new(size: u32) -> Memory {
        let size = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let pages = (size / PAGE_SIZE) as usize;
        Memory {
            bytes: vec![0; size as usize],
            translated: vec![false; pages],
            code_writes: Vec::new(),
            code_write_seen: vec![false; pages],
            mmio_base: u32::MAX,
            mmio_len: 0,
            bus: None,
        }
    }

    /// Attaches an MMIO device bus occupying `[base, base + len)`.
    ///
    /// The window must sit entirely above RAM (device addresses fail
    /// the ordinary bounds check, which is what routes them here — and
    /// what makes the native tier's compiled bounds guard bail out of
    /// JIT code for free on every device access).
    ///
    /// # Panics
    ///
    /// Panics if the window overlaps RAM, is empty, or wraps the
    /// address space.
    pub fn attach_bus(&mut self, base: u32, len: u32, dev: Box<dyn Bus>) {
        assert!(base >= self.size(), "MMIO window {base:#010x} overlaps RAM");
        assert!(len > 0, "empty MMIO window");
        assert!(base.checked_add(len).is_some(), "MMIO window wraps the address space");
        self.mmio_base = base;
        self.mmio_len = len;
        self.bus = Some(MmioWindow { now: Cell::new(0), dev: RefCell::new(dev) });
    }

    /// True when an MMIO bus is attached.
    pub fn has_bus(&self) -> bool {
        self.bus.is_some()
    }

    /// Advances the device clock to `now` (retired guest instructions).
    /// Subsequent MMIO accesses and IRQ-line samples observe this time.
    pub fn set_bus_time(&self, now: u64) {
        if let Some(b) = &self.bus {
            b.now.set(now);
        }
    }

    /// Current device time (0 when no bus is attached).
    pub fn bus_time(&self) -> u64 {
        self.bus.as_ref().map_or(0, |b| b.now.get())
    }

    /// Samples the aggregated external-interrupt line at the current
    /// device time. False when no bus is attached.
    pub fn bus_irq_level(&self) -> bool {
        match &self.bus {
            Some(b) => b.dev.borrow_mut().irq_level(b.now.get()),
            None => false,
        }
    }

    /// Canonical serialization of the attached device tree's state at
    /// the current device time, or `None` when no bus is attached.
    pub fn bus_snapshot(&self) -> Option<Vec<u8>> {
        self.bus.as_ref().map(|b| b.dev.borrow_mut().snapshot(b.now.get()))
    }

    /// Runs `f` against the attached device tree (harness access: RX
    /// injection, transcript reads). Returns `None` when no bus is
    /// attached.
    pub fn with_bus<R>(&self, f: impl FnOnce(u64, &mut dyn Bus) -> R) -> Option<R> {
        self.bus.as_ref().map(|b| f(b.now.get(), b.dev.borrow_mut().as_mut()))
    }

    /// Delivers host-side out-of-band input ([`Bus::host_inject`]) to
    /// the device tree at the current device time. No-op when no bus is
    /// attached.
    pub fn bus_host_inject(&self, data: u32) {
        if let Some(b) = &self.bus {
            b.dev.borrow_mut().host_inject(b.now.get(), data);
        }
    }

    /// True when `addr` falls inside the MMIO window. Engine tiers call
    /// this *before* any memory helper so device accesses always bail
    /// to the interpreter instead of executing from translated code.
    #[inline(always)]
    pub fn is_mmio_inline(&self, addr: u32) -> bool {
        addr.wrapping_sub(self.mmio_base) < self.mmio_len
    }

    #[cold]
    fn mmio_read(&self, addr: u32, width: u32) -> Option<u32> {
        let off = addr.wrapping_sub(self.mmio_base);
        if off >= self.mmio_len || self.mmio_len - off < width {
            return None;
        }
        let b = self.bus.as_ref()?;
        Some(b.dev.borrow_mut().read(b.now.get(), off, width))
    }

    #[cold]
    fn mmio_write(&mut self, addr: u32, width: u32, value: u32) -> Option<()> {
        let off = addr.wrapping_sub(self.mmio_base);
        if off >= self.mmio_len || self.mmio_len - off < width {
            return None;
        }
        let b = self.bus.as_ref()?;
        b.dev.borrow_mut().write(b.now.get(), off, width, value);
        Some(())
    }

    /// Total size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    #[inline(always)]
    fn check(&self, addr: u32, len: u32, write: bool) -> Result<usize, MemFault> {
        let end = addr as u64 + len as u64;
        if end > self.bytes.len() as u64 {
            Err(MemFault { addr, write })
        } else {
            Ok(addr as usize)
        }
    }

    #[inline(always)]
    fn note_store(&mut self, addr: u32, len: u32) {
        let first = addr / PAGE_SIZE;
        let last = (addr + len - 1) / PAGE_SIZE;
        for page in first..=last {
            let i = page as usize;
            if self.translated[i] && !self.code_write_seen[i] {
                self.code_write_seen[i] = true;
                self.code_writes.push(page);
            }
        }
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> Result<u8, MemFault> {
        self.read_u8_impl(addr)
    }

    /// Reads a big-endian halfword.
    pub fn read_u16(&self, addr: u32) -> Result<u16, MemFault> {
        self.read_u16_impl(addr)
    }

    /// Reads a big-endian word.
    pub fn read_u32(&self, addr: u32) -> Result<u32, MemFault> {
        self.read_u32_impl(addr)
    }

    /// Writes one byte, recording code-modification events.
    pub fn write_u8(&mut self, addr: u32, v: u8) -> Result<(), MemFault> {
        self.write_u8_impl(addr, v)
    }

    /// Writes a big-endian halfword.
    pub fn write_u16(&mut self, addr: u32, v: u16) -> Result<(), MemFault> {
        self.write_u16_impl(addr, v)
    }

    /// Writes a big-endian word.
    pub fn write_u32(&mut self, addr: u32, v: u32) -> Result<(), MemFault> {
        self.write_u32_impl(addr, v)
    }

    /// Inlining-guaranteed variant of [`Memory::read_u8`] for the
    /// packed execution engine's hot loop (the unsuffixed accessors
    /// deliberately stay outlined calls so the reference tree engine
    /// keeps its pre-packing code shape).
    #[inline(always)]
    pub fn read_u8_inline(&self, addr: u32) -> Result<u8, MemFault> {
        self.read_u8_impl(addr)
    }

    /// Inlining-guaranteed variant of [`Memory::read_u16`].
    #[inline(always)]
    pub fn read_u16_inline(&self, addr: u32) -> Result<u16, MemFault> {
        self.read_u16_impl(addr)
    }

    /// Inlining-guaranteed variant of [`Memory::read_u32`].
    #[inline(always)]
    pub fn read_u32_inline(&self, addr: u32) -> Result<u32, MemFault> {
        self.read_u32_impl(addr)
    }

    /// Inlining-guaranteed variant of [`Memory::write_u8`].
    #[inline(always)]
    pub fn write_u8_inline(&mut self, addr: u32, v: u8) -> Result<(), MemFault> {
        self.write_u8_impl(addr, v)
    }

    /// Inlining-guaranteed variant of [`Memory::write_u16`].
    #[inline(always)]
    pub fn write_u16_inline(&mut self, addr: u32, v: u16) -> Result<(), MemFault> {
        self.write_u16_impl(addr, v)
    }

    /// Inlining-guaranteed variant of [`Memory::write_u32`].
    #[inline(always)]
    pub fn write_u32_inline(&mut self, addr: u32, v: u32) -> Result<(), MemFault> {
        self.write_u32_impl(addr, v)
    }

    /// Inlining-guaranteed variant of [`Memory::has_code_writes`].
    #[inline(always)]
    pub fn has_code_writes_inline(&self) -> bool {
        !self.code_writes.is_empty()
    }

    // The `_impl` accessors route bounds-check failures to the MMIO
    // window before faulting. Device access is therefore automatic for
    // every *interpreter* path (the window sits above RAM, so the
    // ordinary check fails exactly for device addresses); engine tiers
    // never reach this routing because they test `is_mmio_inline`
    // first and bail — reaching a device read from translated code
    // could replay its side effects on the recovery re-execution.

    #[inline(always)]
    fn read_u8_impl(&self, addr: u32) -> Result<u8, MemFault> {
        match self.check(addr, 1, false) {
            Ok(i) => Ok(self.bytes[i]),
            Err(f) => match self.mmio_read(addr, 1) {
                Some(v) => Ok(v as u8),
                None => Err(f),
            },
        }
    }

    #[inline(always)]
    fn read_u16_impl(&self, addr: u32) -> Result<u16, MemFault> {
        match self.check(addr, 2, false) {
            Ok(i) => Ok(u16::from_be_bytes([self.bytes[i], self.bytes[i + 1]])),
            Err(f) => match self.mmio_read(addr, 2) {
                Some(v) => Ok(v as u16),
                None => Err(f),
            },
        }
    }

    #[inline(always)]
    fn read_u32_impl(&self, addr: u32) -> Result<u32, MemFault> {
        match self.check(addr, 4, false) {
            Ok(i) => Ok(u32::from_be_bytes([
                self.bytes[i],
                self.bytes[i + 1],
                self.bytes[i + 2],
                self.bytes[i + 3],
            ])),
            Err(f) => match self.mmio_read(addr, 4) {
                Some(v) => Ok(v),
                None => Err(f),
            },
        }
    }

    #[inline(always)]
    fn write_u8_impl(&mut self, addr: u32, v: u8) -> Result<(), MemFault> {
        match self.check(addr, 1, true) {
            Ok(i) => {
                self.note_store(addr, 1);
                self.bytes[i] = v;
                Ok(())
            }
            Err(f) => self.mmio_write(addr, 1, v as u32).ok_or(f),
        }
    }

    #[inline(always)]
    fn write_u16_impl(&mut self, addr: u32, v: u16) -> Result<(), MemFault> {
        match self.check(addr, 2, true) {
            Ok(i) => {
                self.note_store(addr, 2);
                self.bytes[i..i + 2].copy_from_slice(&v.to_be_bytes());
                Ok(())
            }
            Err(f) => self.mmio_write(addr, 2, v as u32).ok_or(f),
        }
    }

    #[inline(always)]
    fn write_u32_impl(&mut self, addr: u32, v: u32) -> Result<(), MemFault> {
        match self.check(addr, 4, true) {
            Ok(i) => {
                self.note_store(addr, 4);
                self.bytes[i..i + 4].copy_from_slice(&v.to_be_bytes());
                Ok(())
            }
            Err(f) => self.mmio_write(addr, 4, v).ok_or(f),
        }
    }

    /// Copies a byte slice into memory (used by program loading; does
    /// *not* count as a store for code-modification purposes).
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), MemFault> {
        let i = self.check(addr, data.len() as u32, true)?;
        self.bytes[i..i + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], MemFault> {
        let i = self.check(addr, len, false)?;
        Ok(&self.bytes[i..i + len as usize])
    }

    /// Marks a page's read-only (translated) bit. The VMM calls this
    /// whenever it translates code from the page (§3.2).
    pub fn set_translated_bit(&mut self, page_addr: u32) {
        let i = (page_addr / PAGE_SIZE) as usize;
        if i < self.translated.len() {
            self.translated[i] = true;
        }
    }

    /// Clears a page's read-only (translated) bit (translation cast out
    /// or invalidated).
    pub fn clear_translated_bit(&mut self, page_addr: u32) {
        let i = (page_addr / PAGE_SIZE) as usize;
        if i < self.translated.len() {
            self.translated[i] = false;
            self.code_write_seen[i] = false;
        }
    }

    /// True if the page holding `page_addr` has its translated bit set.
    pub fn translated_bit(&self, page_addr: u32) -> bool {
        let i = (page_addr / PAGE_SIZE) as usize;
        i < self.translated.len() && self.translated[i]
    }

    /// Returns (and clears) the list of translated pages that have been
    /// stored to since the last call — the code-modification interrupts
    /// of §3.2, delivered in batch to the VMM. Page *indices* (address /
    /// 4 KiB) are returned.
    pub fn drain_code_writes(&mut self) -> Vec<u32> {
        for &p in &self.code_writes {
            self.code_write_seen[p as usize] = false;
        }
        std::mem::take(&mut self.code_writes)
    }

    /// True if any code-modification event is pending.
    pub fn has_code_writes(&self) -> bool {
        !self.code_writes.is_empty()
    }

    /// Raw view for the native (JIT) tier: base pointer and length of
    /// the byte array plus the translated-bit array (one byte per 4 KiB
    /// page — `Vec<bool>` stores each flag as a byte, which is exactly
    /// the shape compiled probes test with `cmp byte [..], 0`).
    ///
    /// Compiled code accesses guest bytes directly but bails back to
    /// the packed engine *before* any store whose target page has its
    /// translated bit set, so the code-modification bookkeeping above
    /// is never bypassed. Both arrays are sized at construction and
    /// never reallocate, so the pointers stay valid for the `Memory`'s
    /// lifetime.
    pub fn jit_view(&mut self) -> (*mut u8, u32, *const bool) {
        (self.bytes.as_mut_ptr(), self.bytes.len() as u32, self.translated.as_ptr())
    }

    /// log2 of the translated-bit granule, for the native tier's
    /// compiled page probes.
    pub const fn page_shift() -> u32 {
        PAGE_SIZE.trailing_zeros()
    }
}

/// Why an address translation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XlateFault {
    /// No mapping for the virtual page.
    NotMapped,
    /// Mapping exists but forbids writes.
    Protection,
}

/// A virtual→physical page mapping entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMapping {
    /// Physical page address (page-aligned).
    pub phys: u32,
    /// Whether stores are permitted.
    pub writable: bool,
}

/// The base architecture's page table, consulted when the emulated MSR
/// enables instruction or data relocation.
///
/// Real PowerPC uses hashed page tables; the structure is irrelevant to
/// DAISY's mechanisms (the VMM only needs *a* virtual-to-physical map to
/// implement `GO_ACROSS_PAGE`'s effective-address translation), so a
/// software-managed map keyed by virtual page number stands in.
#[derive(Debug, Clone, Default)]
pub struct Mmu {
    map: HashMap<u32, PageMapping>,
}

impl Mmu {
    /// Creates an empty page table.
    pub fn new() -> Mmu {
        Mmu::default()
    }

    /// Maps the virtual page containing `virt` to the physical page
    /// containing `phys`.
    pub fn map(&mut self, virt: u32, phys: u32, writable: bool) {
        self.map
            .insert(virt / PAGE_SIZE, PageMapping { phys: phys / PAGE_SIZE * PAGE_SIZE, writable });
    }

    /// Removes the mapping for the virtual page containing `virt`.
    pub fn unmap(&mut self, virt: u32) {
        self.map.remove(&(virt / PAGE_SIZE));
    }

    /// Translates a virtual address, honoring write protection.
    pub fn translate(&self, virt: u32, write: bool) -> Result<u32, XlateFault> {
        match self.map.get(&(virt / PAGE_SIZE)) {
            None => Err(XlateFault::NotMapped),
            Some(m) if write && !m.writable => Err(XlateFault::Protection),
            Some(m) => Ok(m.phys + virt % PAGE_SIZE),
        }
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_layout() {
        let mut m = Memory::new(0x1000);
        m.write_u32(0x10, 0x1122_3344).unwrap();
        assert_eq!(m.read_u8(0x10).unwrap(), 0x11);
        assert_eq!(m.read_u8(0x13).unwrap(), 0x44);
        assert_eq!(m.read_u16(0x12).unwrap(), 0x3344);
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = Memory::new(0x1000);
        assert!(m.read_u32(0x0FFE).is_err());
        assert!(m.write_u8(0x1000, 0).is_err());
        assert_eq!(m.read_u32(0x0FFC).unwrap(), 0);
    }

    #[test]
    fn translated_bit_records_code_writes() {
        let mut m = Memory::new(0x4000);
        m.set_translated_bit(0x2000);
        m.write_u32(0x1000, 1).unwrap();
        assert!(!m.has_code_writes());
        m.write_u32(0x2008, 2).unwrap();
        m.write_u8(0x2100, 3).unwrap(); // same page: recorded once
        assert_eq!(m.drain_code_writes(), vec![2]);
        assert!(!m.has_code_writes());
        // After draining, a new store records again.
        m.write_u8(0x2000, 4).unwrap();
        assert_eq!(m.drain_code_writes(), vec![2]);
    }

    #[test]
    fn straddling_store_marks_both_pages() {
        let mut m = Memory::new(0x4000);
        m.set_translated_bit(0x1000);
        m.set_translated_bit(0x2000);
        m.write_u32(0x1FFE, 0xAABB_CCDD).unwrap();
        assert_eq!(m.drain_code_writes(), vec![1, 2]);
    }

    #[derive(Debug, Clone)]
    struct EchoDev {
        regs: [u32; 4],
        reads: u32,
    }

    impl Bus for EchoDev {
        fn read(&mut self, now: u64, offset: u32, _width: u32) -> u32 {
            self.reads += 1;
            self.regs[(offset / 4) as usize].wrapping_add(now as u32)
        }
        fn write(&mut self, _now: u64, offset: u32, _width: u32, value: u32) {
            self.regs[(offset / 4) as usize] = value;
        }
        fn irq_level(&mut self, _now: u64) -> bool {
            self.regs[0] != 0
        }
        fn snapshot(&mut self, _now: u64) -> Vec<u8> {
            self.regs.iter().flat_map(|r| r.to_be_bytes()).collect()
        }
        fn clone_box(&self) -> Box<dyn Bus> {
            Box::new(self.clone())
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn mmio_window_routes_past_ram() {
        let mut m = Memory::new(0x1000);
        assert!(!m.has_bus());
        assert!(!m.is_mmio_inline(0x8000_0000));
        m.attach_bus(0x8000_0000, 0x10, Box::new(EchoDev { regs: [0; 4], reads: 0 }));
        assert!(m.has_bus());
        assert!(m.is_mmio_inline(0x8000_0000));
        assert!(m.is_mmio_inline(0x8000_000F));
        assert!(!m.is_mmio_inline(0x8000_0010));
        assert!(!m.is_mmio_inline(0x7FFF_FFFF));
        assert!(!m.is_mmio_inline(0x0800));

        // Writes and reads route to the device; time is observed.
        m.write_u32(0x8000_0004, 77).unwrap();
        assert_eq!(m.read_u32(0x8000_0004).unwrap(), 77);
        m.set_bus_time(5);
        assert_eq!(m.read_u32(0x8000_0004).unwrap(), 82);
        assert!(!m.bus_irq_level());
        m.write_u32(0x8000_0000, 1).unwrap();
        assert!(m.bus_irq_level());

        // Out-of-range still faults: past the window, straddling its
        // end, and below it (above RAM).
        assert!(m.read_u32(0x8000_0010).is_err());
        assert!(m.read_u32(0x8000_000E).is_err());
        assert!(m.write_u8(0x7FFF_0000, 0).is_err());
        assert!(m.read_u32(0x2000).is_err());

        // RAM still behaves normally underneath.
        m.write_u32(0x10, 42).unwrap();
        assert_eq!(m.read_u32(0x10).unwrap(), 42);

        // Clone carries the device; snapshots match bit for bit.
        let m2 = m.clone();
        assert_eq!(m.bus_snapshot(), m2.bus_snapshot());
        m.write_u32(0x8000_000C, 9).unwrap();
        assert_ne!(m.bus_snapshot(), m2.bus_snapshot());
    }

    #[test]
    fn mmu_translate() {
        let mut mmu = Mmu::new();
        mmu.map(0x0003_0000, 0x2000, true);
        mmu.map(0x0003_1000, 0x5000, false);
        assert_eq!(mmu.translate(0x0003_0104, false), Ok(0x2104));
        assert_eq!(mmu.translate(0x0003_1004, false), Ok(0x5004));
        assert_eq!(mmu.translate(0x0003_1004, true), Err(XlateFault::Protection));
        assert_eq!(mmu.translate(0x0004_0000, false), Err(XlateFault::NotMapped));
    }
}
