/root/repo/target/debug/deps/dispatch-b3bfe08dc0c093aa.d: crates/bench/benches/dispatch.rs

/root/repo/target/debug/deps/dispatch-b3bfe08dc0c093aa: crates/bench/benches/dispatch.rs

crates/bench/benches/dispatch.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
