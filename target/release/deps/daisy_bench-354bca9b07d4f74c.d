/root/repo/target/release/deps/daisy_bench-354bca9b07d4f74c.d: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/daisy_bench-354bca9b07d4f74c: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
crates/bench/src/tables.rs:
