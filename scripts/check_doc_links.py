#!/usr/bin/env python3
"""Check relative markdown links (files and #anchors) in the given docs.

Usage: check_doc_links.py FILE.md [FILE.md ...]

A link is broken if its target file does not exist, or its #anchor
does not match any ATX heading in the target document under GitHub's
slug rules (lowercase; spaces to hyphens; punctuation dropped).
External (scheme://) and mailto links are ignored. Exits non-zero
listing every broken link.
"""

import os
import re
import sys

LINK = re.compile(r"\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.M)


def slugify(heading: str) -> str:
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    out = []
    for ch in text.lower():
        if ch.isalnum():
            out.append(ch)
        elif ch in (" ", "-"):
            out.append("-" if ch == " " else ch)
    return "".join(out)


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        body = f.read()
    # Strip fenced code blocks so commented '#' lines aren't headings.
    body = re.sub(r"```.*?```", "", body, flags=re.S)
    return {slugify(h) for h in HEADING.findall(body)}


def main(files):
    broken = []
    for src in files:
        with open(src, encoding="utf-8") as f:
            text = f.read()
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for target in LINK.findall(text):
            if "://" in target or target.startswith("mailto:"):
                continue
            path, _, frag = target.partition("#")
            resolved = (
                os.path.normpath(os.path.join(os.path.dirname(src), path))
                if path
                else src
            )
            if not os.path.exists(resolved):
                broken.append(f"{src}: missing file {target}")
            elif frag and resolved.endswith(".md") and slugify(frag) not in anchors_of(resolved):
                broken.append(f"{src}: dead anchor {target}")
    if broken:
        print("broken documentation links:", file=sys.stderr)
        for b in broken:
            print(f"  {b}", file=sys.stderr)
        return 1
    print(f"doc links ok ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
