//! Bit-exact PowerPC instruction decoding — the mirror of [`mod@crate::encode`].
//!
//! This is the front end of both the reference interpreter and the DAISY
//! translator: the VMM decodes the same 32-bit words the base
//! architecture would execute (paper Fig. A.2, `DecodeAndScheduleOneInstr`).

use crate::encode::xops;
use crate::insn::{Arith2Op, ArithOp, CrOp, Insn, LogicImmOp, LogicOp, MemWidth, ShiftOp, UnaryOp};
use crate::reg::{CrBit, CrField, Gpr, Spr};

fn rt(w: u32) -> Gpr {
    Gpr(((w >> 21) & 31) as u8)
}

fn ra(w: u32) -> Gpr {
    Gpr(((w >> 16) & 31) as u8)
}

fn rb(w: u32) -> Gpr {
    Gpr(((w >> 11) & 31) as u8)
}

fn si(w: u32) -> i16 {
    (w & 0xFFFF) as u16 as i16
}

fn ui(w: u32) -> u16 {
    (w & 0xFFFF) as u16
}

fn rc(w: u32) -> bool {
    w & 1 != 0
}

fn oe(w: u32) -> bool {
    (w >> 10) & 1 != 0
}

fn bf(w: u32) -> CrField {
    CrField(((w >> 23) & 7) as u8)
}

fn sh(w: u32) -> u8 {
    ((w >> 11) & 31) as u8
}

fn mb(w: u32) -> u8 {
    ((w >> 6) & 31) as u8
}

fn me(w: u32) -> u8 {
    ((w >> 1) & 31) as u8
}

fn bo(w: u32) -> u8 {
    ((w >> 21) & 31) as u8
}

fn bi(w: u32) -> CrBit {
    CrBit(((w >> 16) & 31) as u8)
}

fn spr_num(w: u32) -> u16 {
    let f = (w >> 11) & 0x3FF;
    (((f & 0x1F) << 5) | (f >> 5)) as u16
}

fn dload(w: u32, width: MemWidth, algebraic: bool, update: bool) -> Insn {
    Insn::Load {
        width,
        algebraic,
        update,
        indexed: false,
        rt: rt(w),
        ra: ra(w),
        rb: Gpr(0),
        d: si(w),
    }
}

fn dstore(w: u32, width: MemWidth, update: bool) -> Insn {
    Insn::Store { width, update, indexed: false, rs: rt(w), ra: ra(w), rb: Gpr(0), d: si(w) }
}

fn xload(w: u32, width: MemWidth, algebraic: bool, update: bool) -> Insn {
    Insn::Load { width, algebraic, update, indexed: true, rt: rt(w), ra: ra(w), rb: rb(w), d: 0 }
}

fn xstore(w: u32, width: MemWidth, update: bool) -> Insn {
    Insn::Store { width, update, indexed: true, rs: rt(w), ra: ra(w), rb: rb(w), d: 0 }
}

/// Decodes a 32-bit word into an [`Insn`].
///
/// Unrecognized words decode to [`Insn::Invalid`], preserving the raw
/// word — data interleaved with code is common and must survive.
pub fn decode(w: u32) -> Insn {
    match w >> 26 {
        3 => Insn::Twi { to: bo(w), ra: ra(w), si: si(w) },
        7 => Insn::Mulli { rt: rt(w), ra: ra(w), si: si(w) },
        8 => Insn::Subfic { rt: rt(w), ra: ra(w), si: si(w) },
        10 => Insn::CmpImm { bf: bf(w), signed: false, ra: ra(w), imm: ui(w) as i32 },
        11 => Insn::CmpImm { bf: bf(w), signed: true, ra: ra(w), imm: si(w) as i32 },
        12 => Insn::Addic { rt: rt(w), ra: ra(w), si: si(w), rc: false },
        13 => Insn::Addic { rt: rt(w), ra: ra(w), si: si(w), rc: true },
        14 => Insn::Addi { rt: rt(w), ra: ra(w), si: si(w) },
        15 => Insn::Addis { rt: rt(w), ra: ra(w), si: si(w) },
        16 => Insn::BranchC {
            bo: bo(w),
            bi: bi(w),
            bd: ((w & 0xFFFC) as u16 as i16),
            aa: (w >> 1) & 1 != 0,
            lk: w & 1 != 0,
        },
        17 => {
            if w & 2 != 0 {
                Insn::Sc
            } else {
                Insn::Invalid(w)
            }
        }
        18 => {
            // Sign-extend the 24-bit displacement field (bits 6..29).
            let li = ((w & 0x03FF_FFFC) as i32) << 6 >> 6;
            Insn::BranchI { li, aa: (w >> 1) & 1 != 0, lk: w & 1 != 0 }
        }
        19 => decode_op19(w),
        20 => Insn::Rlwimi { ra: ra(w), rs: rt(w), sh: sh(w), mb: mb(w), me: me(w), rc: rc(w) },
        21 => Insn::Rlwinm { ra: ra(w), rs: rt(w), sh: sh(w), mb: mb(w), me: me(w), rc: rc(w) },
        23 => Insn::Rlwnm { ra: ra(w), rs: rt(w), rb: rb(w), mb: mb(w), me: me(w), rc: rc(w) },
        24 => Insn::LogicImm { op: LogicImmOp::Ori, ra: ra(w), rs: rt(w), ui: ui(w) },
        25 => Insn::LogicImm { op: LogicImmOp::Oris, ra: ra(w), rs: rt(w), ui: ui(w) },
        26 => Insn::LogicImm { op: LogicImmOp::Xori, ra: ra(w), rs: rt(w), ui: ui(w) },
        27 => Insn::LogicImm { op: LogicImmOp::Xoris, ra: ra(w), rs: rt(w), ui: ui(w) },
        28 => Insn::LogicImm { op: LogicImmOp::Andi, ra: ra(w), rs: rt(w), ui: ui(w) },
        29 => Insn::LogicImm { op: LogicImmOp::Andis, ra: ra(w), rs: rt(w), ui: ui(w) },
        31 => decode_op31(w),
        32 => dload(w, MemWidth::Word, false, false),
        33 => dload(w, MemWidth::Word, false, true),
        34 => dload(w, MemWidth::Byte, false, false),
        35 => dload(w, MemWidth::Byte, false, true),
        36 => dstore(w, MemWidth::Word, false),
        37 => dstore(w, MemWidth::Word, true),
        38 => dstore(w, MemWidth::Byte, false),
        39 => dstore(w, MemWidth::Byte, true),
        40 => dload(w, MemWidth::Half, false, false),
        41 => dload(w, MemWidth::Half, false, true),
        42 => dload(w, MemWidth::Half, true, false),
        43 => dload(w, MemWidth::Half, true, true),
        44 => dstore(w, MemWidth::Half, false),
        45 => dstore(w, MemWidth::Half, true),
        46 => Insn::Lmw { rt: rt(w), ra: ra(w), d: si(w) },
        47 => Insn::Stmw { rs: rt(w), ra: ra(w), d: si(w) },
        _ => Insn::Invalid(w),
    }
}

/// Memoizes [`decode`] results per instruction-word address.
///
/// This is the shared direct-mapped memo table from the frontend
/// boundary, instantiated for PowerPC instructions and salted with the
/// PowerPC ISA id; see [`daisy_isa::DecodeCache`] for the
/// self-invalidation story.
pub type DecodeCache = daisy_isa::DecodeCache<Insn>;

fn decode_op19(w: u32) -> Insn {
    let xo = (w >> 1) & 0x3FF;
    let crl = |op| Insn::CrLogic {
        op,
        bt: CrBit(((w >> 21) & 31) as u8),
        ba: CrBit(((w >> 16) & 31) as u8),
        bb: CrBit(((w >> 11) & 31) as u8),
    };
    match xo {
        xops::MCRF => Insn::Mcrf { bf: bf(w), bfa: CrField(((w >> 18) & 7) as u8) },
        xops::BCLR => Insn::BranchClr { bo: bo(w), bi: bi(w), lk: w & 1 != 0 },
        xops::BCCTR => Insn::BranchCctr { bo: bo(w), bi: bi(w), lk: w & 1 != 0 },
        xops::RFI => Insn::Rfi,
        xops::ISYNC => Insn::Isync,
        xops::CRAND => crl(CrOp::And),
        xops::CROR => crl(CrOp::Or),
        xops::CRXOR => crl(CrOp::Xor),
        xops::CRNAND => crl(CrOp::Nand),
        xops::CRNOR => crl(CrOp::Nor),
        xops::CREQV => crl(CrOp::Eqv),
        xops::CRANDC => crl(CrOp::Andc),
        xops::CRORC => crl(CrOp::Orc),
        _ => Insn::Invalid(w),
    }
}

fn decode_op31(w: u32) -> Insn {
    let xo = (w >> 1) & 0x3FF;
    // XO-form (arithmetic) instructions use a 9-bit extended opcode with
    // the OE bit above it; try that interpretation first.
    let xo9 = xo & 0x1FF;
    let arith = |op| Insn::Arith { op, rt: rt(w), ra: ra(w), rb: rb(w), oe: oe(w), rc: rc(w) };
    let arith2 = |op| Insn::Arith2 { op, rt: rt(w), ra: ra(w), oe: oe(w), rc: rc(w) };
    match xo9 {
        xops::ADD => return arith(ArithOp::Add),
        xops::ADDC => return arith(ArithOp::Addc),
        xops::ADDE => return arith(ArithOp::Adde),
        xops::SUBF => return arith(ArithOp::Subf),
        xops::SUBFC => return arith(ArithOp::Subfc),
        xops::SUBFE => return arith(ArithOp::Subfe),
        xops::MULLW => return arith(ArithOp::Mullw),
        xops::MULHW if !oe(w) => return arith(ArithOp::Mulhw),
        xops::MULHWU if !oe(w) => return arith(ArithOp::Mulhwu),
        xops::DIVW => return arith(ArithOp::Divw),
        xops::DIVWU => return arith(ArithOp::Divwu),
        xops::NEG => return arith2(Arith2Op::Neg),
        xops::ADDZE => return arith2(Arith2Op::Addze),
        xops::ADDME => return arith2(Arith2Op::Addme),
        xops::SUBFZE => return arith2(Arith2Op::Subfze),
        xops::SUBFME => return arith2(Arith2Op::Subfme),
        _ => {}
    }
    let logic = |op| Insn::Logic { op, ra: ra(w), rs: rt(w), rb: rb(w), rc: rc(w) };
    let shift = |op| Insn::Shift { op, ra: ra(w), rs: rt(w), rb: rb(w), rc: rc(w) };
    let unary = |op| Insn::Unary { op, ra: ra(w), rs: rt(w), rc: rc(w) };
    match xo {
        xops::CMP => Insn::Cmp { bf: bf(w), signed: true, ra: ra(w), rb: rb(w) },
        xops::CMPL => Insn::Cmp { bf: bf(w), signed: false, ra: ra(w), rb: rb(w) },
        xops::AND => logic(LogicOp::And),
        xops::OR => logic(LogicOp::Or),
        xops::XOR => logic(LogicOp::Xor),
        xops::NAND => logic(LogicOp::Nand),
        xops::NOR => logic(LogicOp::Nor),
        xops::ANDC => logic(LogicOp::Andc),
        xops::ORC => logic(LogicOp::Orc),
        xops::EQV => logic(LogicOp::Eqv),
        xops::SLW => shift(ShiftOp::Slw),
        xops::SRW => shift(ShiftOp::Srw),
        xops::SRAW => shift(ShiftOp::Sraw),
        xops::SRAWI => Insn::Srawi { ra: ra(w), rs: rt(w), sh: sh(w), rc: rc(w) },
        xops::CNTLZW => unary(UnaryOp::Cntlzw),
        xops::EXTSB => unary(UnaryOp::Extsb),
        xops::EXTSH => unary(UnaryOp::Extsh),
        xops::LWZX => xload(w, MemWidth::Word, false, false),
        xops::LWZUX => xload(w, MemWidth::Word, false, true),
        xops::LBZX => xload(w, MemWidth::Byte, false, false),
        xops::LBZUX => xload(w, MemWidth::Byte, false, true),
        xops::LHZX => xload(w, MemWidth::Half, false, false),
        xops::LHZUX => xload(w, MemWidth::Half, false, true),
        xops::LHAX => xload(w, MemWidth::Half, true, false),
        xops::LHAUX => xload(w, MemWidth::Half, true, true),
        xops::STWX => xstore(w, MemWidth::Word, false),
        xops::STWUX => xstore(w, MemWidth::Word, true),
        xops::STBX => xstore(w, MemWidth::Byte, false),
        xops::STBUX => xstore(w, MemWidth::Byte, true),
        xops::STHX => xstore(w, MemWidth::Half, false),
        xops::STHUX => xstore(w, MemWidth::Half, true),
        xops::MFCR => Insn::Mfcr { rt: rt(w) },
        xops::MTCRF => Insn::Mtcrf { fxm: ((w >> 12) & 0xFF) as u8, rs: rt(w) },
        xops::MFSPR => match Spr::from_number(spr_num(w)) {
            Some(spr) => Insn::Mfspr { rt: rt(w), spr },
            None => Insn::Invalid(w),
        },
        xops::MTSPR => match Spr::from_number(spr_num(w)) {
            Some(spr) => Insn::Mtspr { spr, rs: rt(w) },
            None => Insn::Invalid(w),
        },
        xops::MFMSR => Insn::Mfmsr { rt: rt(w) },
        xops::MTMSR => Insn::Mtmsr { rs: rt(w) },
        xops::SYNC => Insn::Sync,
        xops::EIEIO => Insn::Eieio,
        xops::TW => Insn::Tw { to: bo(w), ra: ra(w), rb: rb(w) },
        _ => Insn::Invalid(w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn decode_known_words() {
        assert_eq!(decode(0x3860_0001), Insn::Addi { rt: Gpr(3), ra: Gpr(0), si: 1 });
        assert_eq!(
            decode(0x7C85_3214),
            Insn::Arith {
                op: ArithOp::Add,
                rt: Gpr(4),
                ra: Gpr(5),
                rb: Gpr(6),
                oe: false,
                rc: false
            }
        );
        assert_eq!(decode(0x4E80_0020), Insn::BranchClr { bo: 20, bi: CrBit(0), lk: false });
        assert_eq!(decode(0x4400_0002), Insn::Sc);
    }

    #[test]
    fn decode_cache_hits_and_self_invalidates() {
        let mut c = DecodeCache::with_slots(daisy_isa::IsaId::PPC, 16);
        let addi = 0x3860_0001; // li r3,1
        assert_eq!(c.decode_at(0x1000, addi, decode), decode(addi));
        // Same word at the same address: served from the cache.
        assert_eq!(c.decode_at(0x1000, addi, decode), Insn::Addi { rt: Gpr(3), ra: Gpr(0), si: 1 });
        // The word changed in place (self-modifying code): the stale
        // entry must not be returned.
        let sc = 0x4400_0002;
        assert_eq!(c.decode_at(0x1000, sc, decode), Insn::Sc);
        // A conflicting address mapping to the same slot evicts cleanly.
        assert_eq!(c.decode_at(0x1000 + 16 * 4, addi, decode), decode(addi));
        assert_eq!(c.decode_at(0x1000, sc, decode), Insn::Sc);
    }

    #[test]
    fn negative_branch_displacement() {
        let i = decode(0x4BFF_FFFC);
        assert_eq!(i, Insn::BranchI { li: -4, aa: false, lk: false });
    }

    #[test]
    fn invalid_word_roundtrip() {
        let w = 0xFFFF_FFFF;
        assert_eq!(encode(&decode(w)), w);
        let w2 = 0x0000_0000;
        assert_eq!(encode(&decode(w2)), w2);
    }

    #[test]
    fn mfspr_lr_roundtrip() {
        let i = Insn::Mfspr { rt: Gpr(0), spr: Spr::Lr };
        assert_eq!(decode(encode(&i)), i);
        // mflr r0 canonical encoding.
        assert_eq!(encode(&i), 0x7C08_02A6);
    }
}
