/root/repo/target/release/deps/trace_events-cb0bc251733cb9f0.d: tests/trace_events.rs

/root/repo/target/release/deps/trace_events-cb0bc251733cb9f0: tests/trace_events.rs

tests/trace_events.rs:
