//! DAISY: dynamic compilation of guest binaries to VLIW tree code.
//!
//! This crate is the paper's primary contribution — the Virtual Machine
//! Monitor (VMM) and its one-pass dynamic parallelizing translator. It
//! is **guest-agnostic**: every layer is generic over the
//! [`daisy_isa::Isa`] frontend boundary, and the in-tree frontends
//! (`daisy-ppc` for PowerPC, `daisy-rv32` for RV32I) plug in without
//! this crate naming either of them.
//!
//! * [`sched`] — the Pathlist scheduling algorithm of Chapter 2 and
//!   Appendix A: greedy, multi-path, one pass, renaming speculative
//!   results into non-architected registers and committing them in
//!   program order so exceptions stay precise. Consumes the RISC
//!   primitives the frontend's `Isa::convert` produces.
//! * [`vmm`] — page-granular translation management of Chapter 3:
//!   translation cache (keyed by guest ISA *and* page), valid entry
//!   points, cross-page dispatch, invalidation on code modification.
//! * [`engine`] — executes translated tree instructions against the
//!   emulated machine, with exception tags, load-verify for speculative
//!   loads, and the cache hierarchy attached.
//! * [`precise`] — the table-free exception-address recovery of §3.5
//!   (forward matching of architected assignments).
//! * [`system`] — [`system::DaisySystem`] ties memory, VMM, engine, and
//!   emulated guest CPU state into a runnable whole.
//! * [`oracle`] — the oracle-parallelism schedulers of Chapter 6.
//! * [`overhead`] — the analytic compile-overhead model of §5.1.
//! * [`trace`] — structured observability: [`trace::TraceSink`] event
//!   taps, the per-group execution profiler, and the hot/cold
//!   translation tiers behind [`sched::TierPolicy`].
//! * [`profile`] — guest-level attribution (`perf` for the guest):
//!   per-guest-PC cycles, stalls, speculation waste, the §4.2
//!   VMM-overhead clock, and Chrome-trace / flamegraph / annotated
//!   disassembly exporters.
//! * [`metrics`] — the always-on third observability mode: a lock-free
//!   registry of atomic counters/gauges/histograms published at group
//!   boundaries, diffable [`metrics::MetricsSnapshot`]s (JSON and
//!   Prometheus exposition), and the flight-recorder
//!   [`metrics::PostMortem`] captured on ladder degradation.
//! * [`error`] — typed faults: [`DaisyError`], and the graceful
//!   degradation ladder's [`Rung`]/[`Degradation`] vocabulary.
//! * [`inject`] — deterministic, seed-driven fault-injection campaigns
//!   diffed bit-for-bit against the reference interpreter.
//!
//! # Quick start
//!
//! Pick a frontend (here PowerPC), assemble a guest program, and run it
//! through translation:
//!
//! ```
//! use daisy::prelude::*;
//! use daisy_ppc::{Asm, Gpr, PpcIsa};
//!
//! let mut a = Asm::new(0x1000);
//! a.li(Gpr(3), 21);
//! a.add(Gpr(3), Gpr(3), Gpr(3));
//! a.sc();
//! let prog = a.finish().unwrap();
//!
//! let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(0x40000).build();
//! sys.load(&prog).unwrap();
//! sys.run(1_000_000).unwrap();
//! assert_eq!(sys.cpu.gpr[3], 42);
//! ```
//!
//! The same harness shape works for any [`Isa`](daisy_isa::Isa)
//! implementation — swap the frontend type and the assembler, keep the
//! rest (`docs/isa.md` in the repository walks through adding one).
//! With the `ppc` cargo feature enabled, [`ppc`] re-exports the PowerPC
//! frontend and a [`ppc::PpcSystem`] alias for convenience.

#![warn(missing_docs)]
// Guest-reachable dispatch paths must surface faults as typed
// `DaisyError` / `Degradation` values, never panic. The few remaining
// `unwrap`/`expect` sites in non-test code are data-structure
// invariants, each carrying an explicit allow + `invariant:` note.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod engine;
pub mod error;
pub mod inject;
pub mod metrics;
pub mod native;
pub mod oracle;
pub mod overhead;
pub mod precise;
pub mod profile;
pub mod sched;
pub mod stats;
pub mod system;
pub mod trace;
pub mod vmm;

pub use error::{DaisyError, Degradation, DegradeCause, Rung};
pub use sched::{TierPolicy, TranslatorConfig};
pub use stats::RunStats;
pub use system::DaisySystem;
pub use vmm::Vmm;

/// The guest-frontend boundary crate, re-exported so harnesses can
/// write `daisy::isa::Isa` without a separate dependency line.
pub use daisy_isa as isa;

/// Convenience re-exports for the PowerPC frontend (cargo feature
/// `ppc`, off by default — the core crate itself never depends on a
/// frontend).
#[cfg(feature = "ppc")]
pub mod ppc {
    pub use daisy_ppc::*;

    /// A DAISY machine emulating the PowerPC guest.
    pub type PpcSystem = crate::system::DaisySystem<daisy_ppc::PpcIsa>;
}

/// Everything a typical harness needs in one import — ISA-neutral
/// only; frontend types (assemblers, register names, the `Isa` marker
/// itself) come from the frontend crate you pick.
///
/// ```
/// use daisy::prelude::*;
/// use daisy_ppc::PpcIsa;
///
/// let w: Workload<PpcIsa> = daisy_workloads::by_name("hist").unwrap();
/// let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(w.mem_size).build();
/// sys.load(&w.program()).unwrap();
/// ```
pub mod prelude {
    pub use crate::error::{DaisyError, Degradation, DegradeCause, Rung};
    pub use crate::metrics::{Counter, Gauge, MetricsRegistry, MetricsSnapshot, PostMortem};
    pub use crate::native::NativeStats;
    pub use crate::profile::{GuestProfile, OverheadReport, PcStats, TimelineEvent};
    pub use crate::sched::{TierPolicy, TranslatorConfig};
    pub use crate::stats::{ChainStats, RunStats};
    pub use crate::system::{DaisySystem, DaisySystemBuilder};
    pub use crate::trace::{GroupProfiler, JsonlSink, NullSink, RingSink, TraceEvent, TraceSink};
    pub use daisy_cachesim::Hierarchy;
    pub use daisy_isa::{Event, Exception, GuestCpu, Isa, IsaId, Program, StopReason, Workload};
}
