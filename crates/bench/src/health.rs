//! Plumbing for the `health` binary: checked runs with the metrics
//! registry enabled, periodic snapshots at dispatch-boundary
//! granularity, and the `BENCH_health.json` serializer.
//!
//! The `report` binary answers "how well did the paper's machine do";
//! `health` answers "what is the machine doing right now" — the same
//! counters a monitoring scrape would read from a shared
//! [`MetricsRegistry`], exercised
//! over the workload suite so their conservation can be asserted and
//! their shapes pinned (see `docs/observability.md`).

use daisy::metrics::{Counter, Gauge};
use daisy::prelude::*;
use daisy_ppc::PpcIsa;
use daisy_workloads::Workload;
use std::fmt::Write as _;

/// Execution tier for a health run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Packed-format execution (default; all hosts).
    Packed,
    /// Reference tree-walking engine.
    Tree,
    /// Native x86-64 tier over packed (falls back off-x86-64).
    Native,
}

impl Mode {
    /// The mode's name as it appears in flags and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Packed => "packed",
            Mode::Tree => "tree",
            Mode::Native => "native",
        }
    }

    /// Parses a `--mode` value.
    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "packed" => Some(Mode::Packed),
            "tree" => Some(Mode::Tree),
            "native" => Some(Mode::Native),
            _ => None,
        }
    }
}

/// One workload's health record: how long it ran, how many periodic
/// snapshots were taken, and the final (exact) snapshot.
#[derive(Debug, Clone)]
pub struct HealthRecord {
    /// Workload name.
    pub name: &'static str,
    /// Dispatch boundaries stepped to completion.
    pub boundaries: u64,
    /// Periodic snapshots taken (including the final one).
    pub snapshots: u64,
    /// The final snapshot, read back from the published registry.
    pub last: MetricsSnapshot,
}

/// Runs `w` to completion one dispatch boundary at a time with metrics
/// enabled, snapshotting every `interval` boundaries; `watch` prints a
/// delta line per snapshot. Asserts the workload's result check, then
/// returns the registry's final published snapshot.
pub fn run_health(w: &Workload, mode: Mode, interval: u64, watch: bool) -> HealthRecord {
    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(w.mem_size)
        .packed_execution(mode != Mode::Tree)
        .native_execution(mode == Mode::Native)
        .metrics(true)
        .metrics_publish_period(interval.min(u32::MAX as u64) as u32)
        .build();
    sys.load(&w.program()).expect("workload fits in memory");

    let mut boundaries: u64 = 0;
    let mut snapshots: u64 = 0;
    let mut prev = sys.metrics_snapshot();
    let budget = 50 * w.max_instrs;
    loop {
        let stop = sys.step().expect("workload runs cleanly");
        boundaries += 1;
        if boundaries.is_multiple_of(interval.max(1)) || stop.is_some() {
            let snap = sys.metrics_snapshot();
            snapshots += 1;
            if watch {
                let d = snap.delta(&prev);
                println!(
                    "{:>12} b={:<8} +retired={:<8} +dispatches={:<6} +chained={:<6} \
                     +cast_outs={:<4} degraded={}",
                    w.name,
                    boundaries,
                    d.counter(Counter::RetiredInstrs),
                    d.counter(Counter::VmmDispatches) + d.counter(Counter::ChainedDispatches),
                    d.counter(Counter::ChainedDispatches),
                    d.counter(Counter::CastOuts),
                    snap.gauge(Gauge::DegradedEntries),
                );
            }
            prev = snap;
        }
        if stop.is_some() {
            break;
        }
        assert!(sys.stats.cycles() <= budget, "{}: exceeded cycle budget", w.name);
    }
    w.check(&sys.cpu, &sys.mem).unwrap_or_else(|e| panic!("{}: check failed: {e}", w.name));
    // One last publish so the registry a monitor would scrape agrees
    // with the snapshot we report.
    sys.publish_metrics_now();
    let last = sys.metrics_registry().expect("metrics enabled").snapshot();
    HealthRecord { name: w.name, boundaries, snapshots, last }
}

/// Serializes the records as the `BENCH_health.json` document:
///
/// ```json
/// {
///   "schema": "daisy-health-v1",
///   "mode": "packed",
///   "interval": 4096,
///   "workloads": [ { "name": ..., "boundaries": ...,
///     "snapshots": ..., "metrics": { ... } }, ... ]
/// }
/// ```
///
/// where each `metrics` object is
/// [`MetricsSnapshot::to_json`](daisy::metrics::MetricsSnapshot::to_json).
pub fn health_json(records: &[HealthRecord], mode: Mode, interval: u64) -> String {
    let mut out = String::new();
    // invariant: write! to a String cannot fail.
    #[allow(clippy::unwrap_used)]
    writeln!(
        out,
        "{{\n  \"schema\": \"daisy-health-v1\",\n  \"mode\": \"{}\",\n  \"interval\": {},\n  \
         \"workloads\": [",
        mode.name(),
        interval
    )
    .unwrap();
    for (i, r) in records.iter().enumerate() {
        // invariant: write! to a String cannot fail.
        #[allow(clippy::unwrap_used)]
        writeln!(
            out,
            "    {{\"name\": \"{}\", \"boundaries\": {}, \"snapshots\": {}, \"metrics\": {}}}{}",
            r.name,
            r.boundaries,
            r.snapshots,
            r.last.to_json(),
            if i + 1 < records.len() { "," } else { "" },
        )
        .unwrap();
    }
    out.push_str("  ]\n}\n");
    out
}
