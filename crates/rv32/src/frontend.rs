//! The RV32I implementation of the guest-agnostic frontend boundary.
//!
//! [`Rv32Isa`] is the zero-sized marker the translation core is
//! instantiated with (`DaisySystem<Rv32Isa>`); the [`daisy_isa::Isa`]
//! impl wires the decoder, converter, and branch analysis to the
//! boundary, and the [`daisy_isa::GuestCpu`] impl on [`Cpu`] maps the
//! neutral exception vocabulary onto the machine-mode trap CSRs.

use crate::convert;
use crate::insn::{decode, encode, Insn};
use crate::interp::{mcause, Cpu, DecodeCache, TRAP_VECTOR};
use daisy_isa::convert::{BranchInfo, Converted};
use daisy_isa::mem::Memory;
use daisy_isa::{Event, Exception, IsaId, StopReason};
use daisy_vliw::reg::{CrField, Reg};
use daisy_vliw::regfile::RegFile;

/// Marker type for the RV32I (subset) guest ISA.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rv32Isa;

/// Words that never decode to a valid instruction (the all-zero and
/// all-one words are guaranteed-illegal by the RISC-V spec), used by
/// the fault-injection harness.
static ILLEGAL_WORDS: [u32; 3] = [0x0000_0000, 0xFFFF_FFFF, 0x0000_001F];

impl daisy_isa::Isa for Rv32Isa {
    type Insn = Insn;
    type Cpu = Cpu;
    // The decoder is total: unknown words map to `Insn::Invalid`,
    // which converts to an interpreter exit.
    type DecodeError = std::convert::Infallible;

    const ID: IsaId = IsaId::RV32;
    const NAME: &'static str = "rv32";

    fn decode(word: u32) -> Result<Insn, Self::DecodeError> {
        Ok(decode(word))
    }

    fn convert(insn: &Insn, addr: u32) -> Converted {
        convert::convert(insn, addr)
    }

    fn branch_info(insn: &Insn, pc: u32) -> Option<BranchInfo> {
        convert::branch_info(insn, pc)
    }

    fn ends_interp_window(insn: &Insn) -> bool {
        matches!(insn, Insn::Mret)
    }

    fn disasm(word: u32) -> String {
        decode(word).to_string()
    }

    fn illegal_words() -> &'static [u32] {
        &ILLEGAL_WORDS
    }

    fn interrupt_return_word() -> u32 {
        encode(&Insn::Mret)
    }

    fn external_vector() -> u32 {
        TRAP_VECTOR
    }
}

impl daisy_isa::GuestCpu for Cpu {
    type Insn = Insn;

    fn new(entry: u32) -> Cpu {
        Cpu::new(entry)
    }

    fn pc(&self) -> u32 {
        self.pc
    }

    fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    fn instret(&self) -> u64 {
        self.ninstrs
    }

    fn vectored(&self) -> bool {
        self.vectored
    }

    fn set_vectored(&mut self, v: bool) {
        self.vectored = v;
    }

    fn fetch(&self, mem: &Memory) -> Result<Insn, Event> {
        Cpu::fetch(self, mem)
    }

    fn fetch_cached(&self, mem: &Memory, cache: &mut DecodeCache) -> Result<Insn, Event> {
        Cpu::fetch_cached(self, mem, cache)
    }

    fn execute(&mut self, mem: &mut Memory, insn: Insn) -> Event {
        Cpu::execute(self, mem, insn)
    }

    fn handle_event(&mut self, ev: Event) -> Option<StopReason> {
        Cpu::handle_event(self, ev)
    }

    fn interp_run(&mut self, mem: &mut Memory, max: u64) -> StopReason {
        self.run(mem, max)
    }

    fn deliver(&mut self, e: Exception, at: u32) {
        let (cause, tval) = match e {
            Exception::External => (mcause::EXTERNAL, 0),
            Exception::Syscall => (mcause::ECALL, 0),
            Exception::Program => (mcause::ILLEGAL, 0),
            Exception::Trap => (mcause::BREAKPOINT, 0),
            Exception::Data { addr, write } => {
                (if write { mcause::STORE_FAULT } else { mcause::LOAD_FAULT }, addr)
            }
            Exception::Instruction => (mcause::INSN_FAULT, at),
        };
        Cpu::deliver(self, cause, tval, at);
    }

    fn record_data_fault(&mut self, addr: u32, write: bool) {
        self.mtval = addr;
        self.mcause = if write { mcause::STORE_FAULT } else { mcause::LOAD_FAULT };
    }

    fn interrupts_enabled(&self) -> bool {
        self.mie
    }

    fn enable_interrupts(&mut self) {
        self.mie = true;
    }

    fn effective_address(&self, insn: &Insn) -> Option<u32> {
        match *insn {
            Insn::Load { rs1, off, .. } | Insn::Store { rs1, off, .. } => {
                Some(self.x[rs1.0 as usize].wrapping_add(off as i32 as u32))
            }
            _ => None,
        }
    }

    fn fill_regfile(&self, rf: &mut RegFile) {
        for i in 0..32 {
            rf.set(Reg(i as u8), self.x[i]);
        }
        // Non-architected-for-RV32 resources: scratch only, defined
        // zero at group entry (the converter computes into them before
        // any read).
        for c in 0..8u8 {
            rf.set(Reg::cr(CrField(c)), 0);
        }
        rf.set(Reg::LR, 0);
        rf.set(Reg::CTR, 0);
        rf.set(Reg::CA, 0);
        rf.set(Reg::OV, 0);
        rf.set(Reg::SO, 0);
    }

    fn write_back(&mut self, rf: &RegFile) {
        // x0 stays pinned to zero; scratch resources are not guest
        // state and are dropped.
        for i in 1..32 {
            self.x[i] = rf.get(Reg(i as u8));
        }
    }

    fn state_diff(&self, other: &Cpu, skip_resume: bool) -> Option<String> {
        for (i, (a, b)) in self.x.iter().zip(other.x.iter()).enumerate() {
            if a != b {
                return Some(format!("x{i}: {a:#x} vs {b:#x}"));
            }
        }
        let mut named: Vec<(&str, u32, u32)> = vec![
            ("pc", self.pc, other.pc),
            ("mie", u32::from(self.mie), u32::from(other.mie)),
            ("mtval", self.mtval, other.mtval),
        ];
        if !skip_resume {
            named.push(("mepc", self.mepc, other.mepc));
            named.push(("mcause", self.mcause, other.mcause));
            named.push(("mpie", u32::from(self.mpie), u32::from(other.mpie)));
        }
        for (name, a, b) in named {
            if a != b {
                return Some(format!("{name}: {a:#x} vs {b:#x}"));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{MemWidth, Xr};
    use daisy_isa::{GuestCpu, Isa};

    #[test]
    fn isa_constants_and_roundtrips() {
        assert_eq!(Rv32Isa::ID, IsaId::RV32);
        assert_eq!(Rv32Isa::NAME, "rv32");
        assert_eq!(<Rv32Isa as Isa>::decode(Rv32Isa::interrupt_return_word()).unwrap(), Insn::Mret);
        for &w in Rv32Isa::illegal_words() {
            assert!(matches!(decode(w), Insn::Invalid(_)));
        }
        assert!(Rv32Isa::ends_interp_window(&Insn::Mret));
        assert!(!Rv32Isa::ends_interp_window(&Insn::Ecall));
    }

    #[test]
    fn regfile_roundtrip_preserves_guest_state() {
        let mut cpu = Cpu::new(0x1000);
        for i in 1..32 {
            cpu.set_x(Xr(i as u8), 0x100 + i as u32);
        }
        let mut rf = RegFile::new();
        cpu.fill_regfile(&mut rf);
        assert_eq!(rf.get(Reg(0)), 0);
        assert_eq!(rf.get(Reg(17)), 0x111);
        let mut out = Cpu::new(0x1000);
        out.write_back(&rf);
        assert!(GuestCpu::state_diff(&cpu, &out, true).is_none());
    }

    #[test]
    fn effective_address_matches_interpreter() {
        let mut cpu = Cpu::new(0);
        cpu.set_x(Xr(5), 0x4000);
        let ld =
            Insn::Load { rd: Xr(6), rs1: Xr(5), off: -4, width: MemWidth::Word, unsigned: false };
        assert_eq!(GuestCpu::effective_address(&cpu, &ld), Some(0x3FFC));
    }
}
