//! Preemption fuzzing: the SoC firmware workload under seed-driven
//! timer/UART interrupt schedules, bit-diffed — architected state,
//! RAM, *and* UART transcript — against the interpreter oracle
//! replaying the exact recorded delivery instants.
//!
//! The replay contract rests on the translated tiers' retired-
//! instruction clock being exact for this guest program, so the first
//! test pins exactly that; everything else builds on it. The full
//! 256-seed acceptance matrix is `#[ignore]`d (run it with
//! `cargo test --release -- --ignored preempt`); `scripts/ci.sh`
//! carries a 32-seed smoke slice.

use daisy::inject::{run_campaign, CampaignConfig, FaultKind};
use daisy::native::{NativeTier, NativeTierConfig};
use daisy::system::DaisySystem;
use daisy_isa::{Exception, GuestCpu, StopReason};
use daisy_ppc::interp::Cpu;
use daisy_ppc::mem::Memory;
use daisy_ppc::PpcIsa;
use daisy_workloads::Workload;

fn firmware() -> Workload {
    daisy_workloads::by_name("soc_firmware").expect("firmware workload")
}

fn preempt_cfg(seed: u64) -> CampaignConfig {
    CampaignConfig::new(FaultKind::Preempt, seed).with_bus(daisy_soc::standard_bus)
}

fn native_supported() -> bool {
    NativeTier::new(NativeTierConfig::default()).is_some()
}

/// Runs the firmware fuzz-free on a DaisySystem tier to its halt park,
/// recording every interrupt delivery's `(retired instructions, pc)`.
fn tier_run(w: &Workload, packed: bool, native: bool) -> DaisySystem<PpcIsa> {
    let prog = w.program();
    let mut sys = DaisySystem::<PpcIsa>::builder()
        .mem_size(w.mem_size)
        .packed_execution(packed)
        .native_execution(native)
        .native_threshold(2)
        .record_deliveries(true)
        .build();
    let (base, len, dev) = daisy_soc::standard_bus();
    sys.mem.attach_bus(base, len, dev);
    prog.load_into(&mut sys.mem).unwrap();
    sys.cpu.set_pc(prog.entry);
    let halt = prog.labels["halt"];
    let budget = w.max_instrs.saturating_mul(8);
    loop {
        assert!(sys.stats.cycles() < budget, "tier run exceeded the budget");
        match sys.step().expect("firmware must not surface an error") {
            None => {}
            Some(stop) => panic!("firmware stopped unexpectedly: {stop:?}"),
        }
        if GuestCpu::pc(&sys.cpu) == halt && !sys.cpu.interrupts_enabled() {
            return sys;
        }
    }
}

/// Single-steps the interpreter, delivering each recorded interrupt at
/// its exact retired-instruction instant and asserting the architected
/// PC there matches what the translated tier recorded.
fn oracle_replay(w: &Workload, deliveries: &[(u64, u32)], ctx: &str) -> (Cpu, Memory) {
    let prog = w.program();
    let mut mem = Memory::new(w.mem_size);
    let (base, len, dev) = daisy_soc::standard_bus();
    mem.attach_bus(base, len, dev);
    prog.load_into(&mut mem).unwrap();
    let halt = prog.labels["halt"];
    let mut cpu = Cpu::new(prog.entry);
    let mut di = 0usize;
    loop {
        let now = cpu.instret();
        assert!(now < w.max_instrs, "{ctx}: oracle replay exceeded the budget");
        mem.set_bus_time(now);
        if di < deliveries.len() && deliveries[di].0 == now {
            let at = GuestCpu::pc(&cpu);
            assert_eq!(
                at, deliveries[di].1,
                "{ctx}: delivery {di} replayed at instret {now} landed at the wrong pc \
                 — the tier's instruction clock is not exact"
            );
            GuestCpu::deliver(&mut cpu, Exception::External, at);
            di += 1;
            continue;
        }
        if di == deliveries.len() && GuestCpu::pc(&cpu) == halt && !cpu.interrupts_enabled() {
            return (cpu, mem);
        }
        let ev = cpu.step(&mut mem);
        if let Some(stop) = GuestCpu::handle_event(&mut cpu, ev) {
            panic!("{ctx}: firmware stopped unexpectedly on the oracle: {stop:?}");
        }
    }
}

/// The keystone of the replay design: for this (deliberately
/// `b`-free) guest program, the translated tiers' retired-instruction
/// clock is architecturally *exact* on every tier — replaying each
/// tier's recorded delivery instants on the single-stepped interpreter
/// lands every delivery on the recorded PC, and leaves registers and
/// memory bit-identical. (Final clocks are compared per delivery, not
/// at the very end: the halt park spins an architecturally invisible,
/// tier-dependent number of iterations.)
#[test]
fn firmware_instruction_clock_is_exact_on_every_tier() {
    let w = firmware();
    let mut tiers = vec![("packed", true, false), ("tree", false, false)];
    if native_supported() {
        tiers.push(("native", true, true));
    }
    for (name, packed, native) in tiers {
        let sys = tier_run(&w, packed, native);
        assert!(sys.stats.interrupts_taken >= 2, "{name}: timer never scheduled");
        let log = sys.delivery_log().expect("recording was on").to_vec();
        assert_eq!(log.len() as u64, sys.stats.interrupts_taken, "{name}: log misses deliveries");
        let (ocpu, _omem) = oracle_replay(&w, &log, name);
        if let Some(what) = sys.cpu.state_diff(&ocpu, false) {
            panic!("{name}: architected state diverged from the replay oracle: {what}");
        }
        (w.check)(&sys.cpu, &sys.mem).unwrap_or_else(|e| panic!("{name}: {e}"));
        (w.check)(&ocpu, &_omem).unwrap_or_else(|e| panic!("{name} oracle: {e}"));
    }
}

/// Multi-seed preemption campaigns on the packed tier: every schedule
/// of forced interrupts, storms, and RX injections must leave the
/// system bit-identical to the oracle replay.
#[test]
fn preempt_campaigns_bit_exact_on_packed() {
    for seed in 0..8u64 {
        let out = run_campaign::<PpcIsa>(&firmware(), &preempt_cfg(seed))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(out.stop, StopReason::Halted, "seed {seed}");
        assert!(out.interrupts_taken > 0, "seed {seed}: no interrupt was ever delivered");
        assert!(out.degradations >= 1, "seed {seed}: ladder driver recorded no step");
    }
}

/// The same campaigns on the tree engine (the ladder's first fallback
/// rung must deliver interrupts exactly where the packed tier does).
#[test]
fn preempt_campaigns_bit_exact_on_tree() {
    for seed in 0..4u64 {
        let cfg = CampaignConfig { packed: false, ..preempt_cfg(seed) };
        let out = run_campaign::<PpcIsa>(&firmware(), &cfg)
            .unwrap_or_else(|e| panic!("tree seed {seed}: {e}"));
        assert_eq!(out.stop, StopReason::Halted, "tree seed {seed}");
        assert!(out.interrupts_taken > 0, "tree seed {seed}");
    }
}

/// Campaigns with the native x86-64 tier on: interrupts must land at
/// rerolled back-edge yields of compiled groups without losing
/// precision. On hosts without native support this degenerates to a
/// second packed run (the builder falls back), which is still valid.
#[test]
fn preempt_campaigns_bit_exact_on_native() {
    let mut yields = 0u64;
    for seed in 0..6u64 {
        let cfg = preempt_cfg(seed).with_native();
        let out = run_campaign::<PpcIsa>(&firmware(), &cfg)
            .unwrap_or_else(|e| panic!("native seed {seed}: {e}"));
        assert_eq!(out.stop, StopReason::Halted, "native seed {seed}");
        yields += out.native_yield_preempts;
    }
    if native_supported() {
        assert!(yields > 0, "no delivery ever landed at a native-tier yield across any seed");
    }
}

/// Preemption survives with chaining disabled (pure-VMM dispatch).
#[test]
fn preempt_campaigns_bit_exact_without_chaining() {
    for seed in [3u64, 17] {
        let cfg = CampaignConfig { chaining: false, ..preempt_cfg(seed) };
        run_campaign::<PpcIsa>(&firmware(), &cfg)
            .unwrap_or_else(|e| panic!("unchained seed {seed}: {e}"));
    }
}

/// The acceptance matrix: 256 seeds, packed and native. Ignored by
/// default (minutes of work); CI runs a 32-seed slice.
#[test]
#[ignore = "full acceptance matrix; run with --ignored"]
fn preempt_acceptance_256_seeds() {
    let w = firmware();
    for seed in 0..128u64 {
        run_campaign::<PpcIsa>(&w, &preempt_cfg(seed))
            .unwrap_or_else(|e| panic!("packed seed {seed}: {e}"));
        run_campaign::<PpcIsa>(&w, &preempt_cfg(seed).with_native())
            .unwrap_or_else(|e| panic!("native seed {seed}: {e}"));
    }
}
