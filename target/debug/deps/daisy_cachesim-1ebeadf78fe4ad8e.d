/root/repo/target/debug/deps/daisy_cachesim-1ebeadf78fe4ad8e.d: crates/cachesim/src/lib.rs

/root/repo/target/debug/deps/daisy_cachesim-1ebeadf78fe4ad8e: crates/cachesim/src/lib.rs

crates/cachesim/src/lib.rs:
