/root/repo/target/debug/deps/prop_roundtrip-6e1ec38d433f733d.d: crates/ppc/tests/prop_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libprop_roundtrip-6e1ec38d433f733d.rmeta: crates/ppc/tests/prop_roundtrip.rs Cargo.toml

crates/ppc/tests/prop_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
