/root/repo/target/debug/deps/profile-02ae727abf1d3827.d: crates/bench/src/bin/profile.rs Cargo.toml

/root/repo/target/debug/deps/libprofile-02ae727abf1d3827.rmeta: crates/bench/src/bin/profile.rs Cargo.toml

crates/bench/src/bin/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
