/root/repo/target/release/deps/daisy_cachesim-694843f059fe55d7.d: crates/cachesim/src/lib.rs

/root/repo/target/release/deps/daisy_cachesim-694843f059fe55d7: crates/cachesim/src/lib.rs

crates/cachesim/src/lib.rs:
