/root/repo/target/debug/deps/daisy_repro-3c73b05d597bad7f.d: src/lib.rs

/root/repo/target/debug/deps/libdaisy_repro-3c73b05d597bad7f.rlib: src/lib.rs

/root/repo/target/debug/deps/libdaisy_repro-3c73b05d597bad7f.rmeta: src/lib.rs

src/lib.rs:
