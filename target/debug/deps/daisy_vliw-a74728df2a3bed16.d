/root/repo/target/debug/deps/daisy_vliw-a74728df2a3bed16.d: crates/vliw/src/lib.rs crates/vliw/src/machine.rs crates/vliw/src/op.rs crates/vliw/src/reg.rs crates/vliw/src/regfile.rs crates/vliw/src/tree.rs

/root/repo/target/debug/deps/daisy_vliw-a74728df2a3bed16: crates/vliw/src/lib.rs crates/vliw/src/machine.rs crates/vliw/src/op.rs crates/vliw/src/reg.rs crates/vliw/src/regfile.rs crates/vliw/src/tree.rs

crates/vliw/src/lib.rs:
crates/vliw/src/machine.rs:
crates/vliw/src/op.rs:
crates/vliw/src/reg.rs:
crates/vliw/src/regfile.rs:
crates/vliw/src/tree.rs:
