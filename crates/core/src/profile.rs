//! Guest-level cycle attribution, speculation-waste accounting, and
//! exportable profiles — `perf` for the *guest*.
//!
//! The paper's whole evaluation is phrased in guest terms: ILP per
//! *base* instruction, speculative operations wasted, translation
//! overhead per base instruction (§4.2's ~4000-instruction budget).
//! [`crate::trace::GroupProfiler`] stops at the group boundary: it can
//! say *which entry* is hot, but not *which guest instructions* own the
//! cycles. This module closes that gap:
//!
//! * [`GuestProfile`] attributes VLIW issue cycles, stall cycles,
//!   dispatch counts, and **speculation waste** to `(group entry, guest
//!   PC)` pairs, using the provenance side-tables the lowering step
//!   builds ([`daisy_vliw::packed::PackedGroup::origins`]) and the
//!   retirement trace the
//!   profiled engine variants record
//!   ([`crate::engine::run_group_profiled`]). Provenance is consulted
//!   only here, at retirement — never inside the execution hot loop.
//! * [`OverheadClock`] buckets modeled VMM time into translate /
//!   retranslate / chain-maintenance / interpret, per §4.2.
//! * Exporters: Chrome `trace_event` JSON ([`chrome_trace_json`]),
//!   flamegraph-folded stacks ([`folded_stacks`]), and an annotated
//!   guest disassembly ([`annotated_disassembly`], like
//!   `perf annotate`).
//!
//! # Attribution model
//!
//! Each retired VLIW costs one issue cycle
//! ([`crate::stats::RunStats::cycles`]); that cycle is split equally
//! among the *distinct* guest PCs on the VLIW's taken path (parcel
//! origins plus the origins of resolved branch conditions). A VLIW
//! whose taken path carries no parcels charges its cycle to the VLIW's
//! `base_entry`. A dispatch's stall cycles are split equally among the
//! distinct guest PCs of the whole dispatch — the engine does not
//! record which access stalled, and pretending otherwise would be
//! false precision. Summed over a run, the attributed issue cycles
//! equal `vliws_executed` and the attributed stalls equal
//! `stall_cycles` exactly (up to floating-point rounding); the profile
//! tests pin this.
//!
//! **Speculation waste** follows the paper's wasted-work notion: a
//! speculative parcel whose renamed results never reach an architected
//! commitment on the taken path. At retirement a backward liveness walk
//! runs over the recorded visit trace: non-speculative parcels
//! (commits, stores, trap checks) and resolved branch/indirect sources
//! seed the needed set; a speculative parcel none of whose destinations
//! are needed is wasted, and usefulness propagates transitively through
//! speculative chains. This is exact for completed dispatches because
//! groups are acyclic and each node executes at most once per dispatch;
//! for dispatches aborted mid-node (exceptions, alias restarts) the
//! trailing node is approximated as fully executed.
//!
//! Attribution is **engine-independent**: the packed and tree engines
//! record identical visit traces (`tests/profile.rs` pins equality of
//! whole profiles, floating point included).

use crate::engine::GroupCode;
use crate::stats::RunStats;
use crate::trace::Tier;
use daisy_isa::mem::Memory;
use daisy_isa::Isa;
use daisy_vliw::packed::{OpMeta, PackedCtrl};
use daisy_vliw::reg::NUM_REGS;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;

/// Modeled VMM cycles to translate one base instruction — §4.2: "DAISY
/// currently spends about 4000 instructions translating each PowerPC
/// instruction" (also the pessimistic column of Table 5.8).
pub const TRANSLATE_CYCLES_PER_INSTR: f64 = 4000.0;

/// Modeled VMM cycles to install one group-to-group chain link
/// (patch an exit, bookkeeping).
pub const CHAIN_INSTALL_CYCLES: f64 = 32.0;

/// Modeled VMM cycles to observe and clear one severed chain link.
pub const CHAIN_SEVER_CYCLES: f64 = 16.0;

/// Per-guest-PC attribution record (one per `(entry, pc)` pair; see
/// [`GuestProfile::iter`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PcStats {
    /// Share of VLIW issue cycles attributed to this PC.
    pub cycles: f64,
    /// Share of cache-stall cycles attributed to this PC.
    pub stall_cycles: f64,
    /// Dispatches whose taken path included this PC.
    pub dispatches: u64,
    /// Non-speculative (architected-effect) parcels executed for this
    /// PC: commits, stores, trap checks.
    pub committed_ops: u64,
    /// Speculative parcels executed for this PC.
    pub spec_ops: u64,
    /// Speculative parcels executed whose renamed results were never
    /// needed on the taken path (the paper's wasted work).
    pub wasted_spec_ops: u64,
}

impl PcStats {
    fn merge(&mut self, other: &PcStats) {
        self.cycles += other.cycles;
        self.stall_cycles += other.stall_cycles;
        self.dispatches += other.dispatches;
        self.committed_ops += other.committed_ops;
        self.spec_ops += other.spec_ops;
        self.wasted_spec_ops += other.wasted_spec_ops;
    }
}

/// One entry of the dispatch timeline kept for the Chrome exporter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineEvent {
    /// One group dispatch (a duration event in the Chrome trace).
    Dispatch {
        /// Group entry address.
        entry: u32,
        /// Simulated cycle at dispatch start.
        start: u64,
        /// Simulated cycles the dispatch took (issue + stalls).
        cycles: u64,
        /// VLIWs retired by the dispatch.
        vliws: u32,
        /// Translation tier the dispatched code was built at.
        tier: Tier,
    },
    /// A point event (degradation, cast-out) in the Chrome trace.
    Instant {
        /// Static label (`"degrade"`, `"cast_out"`).
        label: &'static str,
        /// The address the event concerns (entry or page base).
        addr: u32,
        /// Simulated cycle the event was observed at.
        at: u64,
    },
}

/// Buckets modeled VMM time per §4.2: first-touch translation,
/// retranslation (hot promotion, conservative rebuilds, re-translation
/// after cast-out or invalidation), chain maintenance, and
/// interpretation.
///
/// Translation work is measured in base instructions scheduled
/// ([`crate::sched::XlateCost::instrs_scheduled`]) and converted to
/// cycles with [`TRANSLATE_CYCLES_PER_INSTR`]; chain maintenance is
/// charged per link install/sever from [`crate::stats::ChainStats`];
/// the interpret bucket charges one cycle per interpreted instruction,
/// matching [`RunStats::cycles`].
#[derive(Debug, Clone, Default)]
pub struct OverheadClock {
    /// First-touch translations observed.
    pub translations: u64,
    /// Translations of an entry that had been translated before
    /// (hot promotion, conservative rebuild, cast-out or invalidation
    /// refill).
    pub retranslations: u64,
    /// Base instructions scheduled by first-touch translations.
    pub translate_instrs: u64,
    /// Base instructions scheduled by retranslations.
    pub retranslate_instrs: u64,
    seen: HashSet<u32>,
}

/// The four §4.2 buckets converted to modeled cycles
/// ([`OverheadClock::report`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// First-touch translation cycles.
    pub translate_cycles: f64,
    /// Retranslation cycles.
    pub retranslate_cycles: f64,
    /// Chain install/sever maintenance cycles.
    pub chain_cycles: f64,
    /// Interpreter cycles (one per interpreted instruction).
    pub interp_cycles: f64,
}

impl OverheadReport {
    /// Total modeled VMM cycles across all four buckets.
    pub fn total(&self) -> f64 {
        self.translate_cycles + self.retranslate_cycles + self.chain_cycles + self.interp_cycles
    }

    /// Modeled VMM cycles per base instruction executed — the paper's
    /// "overhead per base instruction" framing.
    pub fn per_base_instr(&self, base_instrs: u64) -> f64 {
        if base_instrs == 0 {
            0.0
        } else {
            self.total() / base_instrs as f64
        }
    }
}

impl OverheadClock {
    /// Records one translation of `entry` that scheduled
    /// `instrs_scheduled` base instructions, classifying it as a
    /// first-touch translation or a retranslation.
    pub fn note_translation(&mut self, entry: u32, instrs_scheduled: u64) {
        if self.seen.insert(entry) {
            self.translations += 1;
            self.translate_instrs += instrs_scheduled;
        } else {
            self.retranslations += 1;
            self.retranslate_instrs += instrs_scheduled;
        }
    }

    /// Converts the buckets to modeled cycles, pulling chain and
    /// interpreter activity out of the run's [`RunStats`].
    pub fn report(&self, stats: &RunStats) -> OverheadReport {
        OverheadReport {
            translate_cycles: self.translate_instrs as f64 * TRANSLATE_CYCLES_PER_INSTR,
            retranslate_cycles: self.retranslate_instrs as f64 * TRANSLATE_CYCLES_PER_INSTR,
            chain_cycles: stats.chain.link_installs as f64 * CHAIN_INSTALL_CYCLES
                + stats.chain.severs as f64 * CHAIN_SEVER_CYCLES,
            interp_cycles: stats.interp_instrs as f64,
        }
    }
}

/// Default bound on the dispatch timeline kept for the Chrome exporter;
/// entries beyond it are counted in
/// [`GuestProfile::timeline_dropped`], never silently lost.
pub const DEFAULT_TIMELINE_CAPACITY: usize = 1 << 20;

/// Accumulated guest-level attribution for one run (see the
/// [module docs](self) for the attribution model).
#[derive(Debug)]
pub struct GuestProfile {
    per_pc: HashMap<(u32, u32), PcStats>,
    timeline: Vec<TimelineEvent>,
    timeline_capacity: usize,
    timeline_dropped: u64,
    overhead: OverheadClock,
    dispatches: u64,
    spec_ops: u64,
    wasted_spec_ops: u64,
    // High-water marks for VMM event streams already mirrored into the
    // timeline (see `sync_vmm_events`).
    seen_degradations: usize,
    seen_cast_outs: u64,
    // Scratch reused across record_dispatch calls.
    scratch_vliw_pcs: Vec<u32>,
    scratch_dispatch_pcs: Vec<u32>,
}

impl Default for GuestProfile {
    fn default() -> GuestProfile {
        GuestProfile::new()
    }
}

impl GuestProfile {
    /// Creates an empty profile with the default timeline bound.
    pub fn new() -> GuestProfile {
        GuestProfile {
            per_pc: HashMap::new(),
            timeline: Vec::new(),
            timeline_capacity: DEFAULT_TIMELINE_CAPACITY,
            timeline_dropped: 0,
            overhead: OverheadClock::default(),
            dispatches: 0,
            spec_ops: 0,
            wasted_spec_ops: 0,
            seen_degradations: 0,
            seen_cast_outs: 0,
            scratch_vliw_pcs: Vec::new(),
            scratch_dispatch_pcs: Vec::new(),
        }
    }

    /// Bounds the dispatch timeline to `cap` events (builder style).
    pub fn with_timeline_capacity(mut self, cap: usize) -> GuestProfile {
        self.timeline_capacity = cap;
        self
    }

    /// Group dispatches recorded.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// Speculative parcels executed, summed over all PCs.
    pub fn spec_ops(&self) -> u64 {
        self.spec_ops
    }

    /// Wasted speculative parcels, summed over all PCs.
    pub fn wasted_spec_ops(&self) -> u64 {
        self.wasted_spec_ops
    }

    /// Fraction of executed speculative parcels that were wasted
    /// (`0.0` when no speculative parcel ran).
    pub fn waste_fraction(&self) -> f64 {
        if self.spec_ops == 0 {
            0.0
        } else {
            self.wasted_spec_ops as f64 / self.spec_ops as f64
        }
    }

    /// The §4.2 VMM-overhead clock.
    pub fn overhead(&self) -> &OverheadClock {
        &self.overhead
    }

    /// Mutable access to the overhead clock (the system wires VMM
    /// translation deltas through this).
    pub fn overhead_mut(&mut self) -> &mut OverheadClock {
        &mut self.overhead
    }

    /// The bounded dispatch timeline, in simulated-cycle order.
    pub fn timeline(&self) -> &[TimelineEvent] {
        &self.timeline
    }

    /// Timeline events dropped after the bound was reached.
    pub fn timeline_dropped(&self) -> u64 {
        self.timeline_dropped
    }

    /// Iterates attribution records as `((entry, pc), stats)`.
    pub fn iter(&self) -> impl Iterator<Item = (&(u32, u32), &PcStats)> {
        self.per_pc.iter()
    }

    /// Attribution for one guest PC, aggregated over all group entries
    /// that scheduled it.
    pub fn pc_stats(&self, pc: u32) -> PcStats {
        let mut agg = PcStats::default();
        for ((_, p), s) in &self.per_pc {
            if *p == pc {
                agg.merge(s);
            }
        }
        agg
    }

    /// Attribution aggregated per guest PC over all entries, sorted by
    /// PC — the view the annotated-disassembly exporter renders.
    pub fn by_pc(&self) -> BTreeMap<u32, PcStats> {
        let mut out: BTreeMap<u32, PcStats> = BTreeMap::new();
        for ((_, pc), s) in &self.per_pc {
            out.entry(*pc).or_default().merge(s);
        }
        out
    }

    /// Total attributed cycles (issue + stall), all PCs.
    pub fn total_cycles(&self) -> f64 {
        self.per_pc.values().map(|s| s.cycles + s.stall_cycles).sum()
    }

    /// Total attributed issue cycles — equals the run's
    /// `vliws_executed` restricted to profiled dispatches.
    pub fn total_issue_cycles(&self) -> f64 {
        self.per_pc.values().map(|s| s.cycles).sum()
    }

    /// Total attributed stall cycles.
    pub fn total_stall_cycles(&self) -> f64 {
        self.per_pc.values().map(|s| s.stall_cycles).sum()
    }

    /// Appends a point event (degradation, cast-out) to the timeline.
    pub(crate) fn note_instant(&mut self, label: &'static str, addr: u32, at: u64) {
        self.push_timeline(TimelineEvent::Instant { label, addr, at });
    }

    /// Mirrors VMM event streams into the timeline: any degradation or
    /// cast-out recorded since the last sync becomes an instant stamped
    /// `now` (the dispatch loop syncs at each group boundary, so the
    /// stamp is at most one dispatch late; cast-outs carry no address —
    /// the VMM only counts them).
    pub(crate) fn sync_vmm_events(
        &mut self,
        degradations: &[crate::error::Degradation],
        cast_outs: u64,
        now: u64,
    ) {
        while self.seen_degradations < degradations.len() {
            let entry = degradations[self.seen_degradations].entry;
            self.note_instant("degrade", entry, now);
            self.seen_degradations += 1;
        }
        while self.seen_cast_outs < cast_outs {
            self.note_instant("cast_out", 0, now);
            self.seen_cast_outs += 1;
        }
    }

    fn push_timeline(&mut self, ev: TimelineEvent) {
        if self.timeline.len() < self.timeline_capacity {
            self.timeline.push(ev);
        } else {
            self.timeline_dropped += 1;
        }
    }

    /// Records one retired dispatch from the engine's visit trace.
    ///
    /// `visited` holds absolute packed-node indices in execution order
    /// ([`crate::engine::EngineScratch`]); `stall_delta` /
    /// `cycle_delta` are the dispatch's contribution to the run
    /// counters; `start_cycle` is the simulated clock at dispatch
    /// start.
    pub(crate) fn record_dispatch(
        &mut self,
        code: &GroupCode,
        visited: &[u32],
        stall_delta: u64,
        start_cycle: u64,
        cycle_delta: u64,
    ) {
        let packed = &code.packed;
        let entry = code.group.entry;
        self.dispatches += 1;

        // --- issue-cycle shares, one cycle per retired VLIW ---
        let mut vliw_count = 0u32;
        let mut i = 0usize;
        let mut dispatch_pcs = std::mem::take(&mut self.scratch_dispatch_pcs);
        let mut vliw_pcs = std::mem::take(&mut self.scratch_vliw_pcs);
        dispatch_pcs.clear();
        while i < visited.len() {
            let v = packed.node_vliw(visited[i] as usize);
            vliw_count += 1;
            vliw_pcs.clear();
            let mut j = i;
            while j < visited.len() && packed.node_vliw(visited[j] as usize) == v {
                let node = &packed.nodes[visited[j] as usize];
                vliw_pcs.extend_from_slice(packed.node_origins(node));
                if let PackedCtrl::Cond { cond, .. } = node.ctrl {
                    vliw_pcs.push(cond.origin);
                }
                j += 1;
            }
            vliw_pcs.sort_unstable();
            vliw_pcs.dedup();
            if vliw_pcs.is_empty() {
                // Structural VLIW (no parcels on the taken path): its
                // issue cycle belongs to the VLIW's anchor address.
                vliw_pcs.push(code.group.vliws[v as usize].base_entry);
            }
            let share = 1.0 / vliw_pcs.len() as f64;
            for &pc in &vliw_pcs {
                self.per_pc.entry((entry, pc)).or_default().cycles += share;
                dispatch_pcs.push(pc);
            }
            i = j;
        }

        // --- stall shares and dispatch counts over the whole path ---
        dispatch_pcs.sort_unstable();
        dispatch_pcs.dedup();
        if !dispatch_pcs.is_empty() {
            let share = stall_delta as f64 / dispatch_pcs.len() as f64;
            for &pc in &dispatch_pcs {
                // invariant: every pc in dispatch_pcs was inserted above.
                #[allow(clippy::unwrap_used)]
                let s = self.per_pc.get_mut(&(entry, pc)).unwrap();
                s.stall_cycles += share;
                s.dispatches += 1;
            }
        }
        self.scratch_dispatch_pcs = dispatch_pcs;
        self.scratch_vliw_pcs = vliw_pcs;

        // --- speculation waste: backward liveness over the path ---
        let mut needed = [false; NUM_REGS];
        for &ni in visited.iter().rev() {
            let node = &packed.nodes[ni as usize];
            match node.ctrl {
                PackedCtrl::Cond { cond, .. } => needed[cond.src.index()] = true,
                PackedCtrl::Indirect { src, .. } => needed[src.index()] = true,
                _ => {}
            }
            let start = node.start as usize;
            for k in (start..start + node.len as usize).rev() {
                let op = &packed.ops[k];
                let m = &packed.meta[k];
                let pc = packed.origin_pc(k);
                if op.speculative {
                    let useful = (m.d1 != OpMeta::NONE && needed[m.d1 as usize])
                        || (m.d2 != OpMeta::NONE && needed[m.d2 as usize]);
                    let s = self.per_pc.entry((entry, pc)).or_default();
                    s.spec_ops += 1;
                    self.spec_ops += 1;
                    if useful {
                        if m.d1 != OpMeta::NONE {
                            needed[m.d1 as usize] = false;
                        }
                        if m.d2 != OpMeta::NONE {
                            needed[m.d2 as usize] = false;
                        }
                        for si in 0..m.nsrc as usize {
                            needed[m.s[si] as usize] = true;
                        }
                    } else {
                        s.wasted_spec_ops += 1;
                        self.wasted_spec_ops += 1;
                    }
                } else {
                    // Architected effect (commit, store, trap check):
                    // always needed; its sources become live.
                    self.per_pc.entry((entry, pc)).or_default().committed_ops += 1;
                    if m.d1 != OpMeta::NONE {
                        needed[m.d1 as usize] = false;
                    }
                    if m.d2 != OpMeta::NONE {
                        needed[m.d2 as usize] = false;
                    }
                    for si in 0..m.nsrc as usize {
                        needed[m.s[si] as usize] = true;
                    }
                }
            }
        }

        self.push_timeline(TimelineEvent::Dispatch {
            entry,
            start: start_cycle,
            cycles: cycle_delta,
            vliws: vliw_count,
            tier: code.tier,
        });
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                // invariant: write! to a String cannot fail.
                #[allow(clippy::unwrap_used)]
                write!(out, "\\u{:04x}", c as u32).unwrap()
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the profile's timeline as Chrome `trace_event` JSON
/// (the JSON-object format: `{"traceEvents": [...]}`), loadable in
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
///
/// Group dispatches become duration (`"ph":"X"`) events and
/// degradations/cast-outs become instant (`"ph":"i"`) events; the
/// timestamp unit is one microsecond per simulated cycle.
pub fn chrome_trace_json(profile: &GuestProfile, process_name: &str) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    // invariant: write! to a String cannot fail.
    #[allow(clippy::unwrap_used)]
    {
        write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(process_name)
        )
        .unwrap();
        for ev in profile.timeline() {
            out.push(',');
            match *ev {
                TimelineEvent::Dispatch { entry, start, cycles, vliws, tier } => write!(
                    out,
                    "{{\"name\":\"group@{entry:#x}\",\"cat\":\"dispatch\",\"ph\":\"X\",\
                     \"ts\":{start},\"dur\":{dur},\"pid\":1,\"tid\":1,\
                     \"args\":{{\"entry\":\"{entry:#x}\",\"vliws\":{vliws},\
                     \"tier\":\"{tier}\"}}}}",
                    dur = cycles.max(1),
                    tier = tier.name(),
                )
                .unwrap(),
                TimelineEvent::Instant { label, addr, at } => write!(
                    out,
                    "{{\"name\":\"{label}\",\"cat\":\"vmm\",\"ph\":\"i\",\"s\":\"p\",\
                     \"ts\":{at},\"pid\":1,\"tid\":1,\"args\":{{\"addr\":\"{addr:#x}\"}}}}",
                )
                .unwrap(),
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders the profile as flamegraph-folded stacks, one line per
/// `(entry, pc)` record:
///
/// ```text
/// workload;page_0x1000;entry_0x1020;pc_0x1044 37
/// ```
///
/// The weight is the PC's attributed cycles (issue + stall) rounded to
/// the nearest integer; zero-weight records are omitted. Feed the
/// output to `flamegraph.pl` or any folded-stack viewer.
pub fn folded_stacks(profile: &GuestProfile, workload: &str, page_size: u32) -> String {
    let mut lines: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    for (&(entry, pc), s) in profile.iter() {
        let w = (s.cycles + s.stall_cycles).round() as u64;
        if w > 0 {
            *lines.entry((entry, pc)).or_insert(0) += w;
        }
    }
    let mut out = String::new();
    for ((entry, pc), w) in lines {
        let page = entry / page_size.max(1) * page_size.max(1);
        // invariant: write! to a String cannot fail.
        #[allow(clippy::unwrap_used)]
        writeln!(out, "{workload};page_{page:#x};entry_{entry:#x};pc_{pc:#x} {w}").unwrap();
    }
    out
}

/// Renders an annotated guest disassembly: every profiled PC in address
/// order with its attributed cycles, stalls, dispatch count, and
/// speculation waste, plus the decoded instruction — the guest-side
/// equivalent of `perf annotate`.
///
/// Instruction words are fetched from `mem` and disassembled by the
/// guest frontend `I`; addresses that can no longer be read (unmapped)
/// render as `??`.
pub fn annotated_disassembly<I: Isa>(profile: &GuestProfile, mem: &Memory, title: &str) -> String {
    let by_pc = profile.by_pc();
    let total: f64 = by_pc.values().map(|s| s.cycles + s.stall_cycles).sum();
    let mut out = String::new();
    // invariant: write! to a String cannot fail.
    #[allow(clippy::unwrap_used)]
    {
        writeln!(out, "# annotated guest disassembly: {title}").unwrap();
        writeln!(
            out,
            "# total attributed cycles: {total:.1}; spec ops: {}; wasted: {} ({:.2}%)",
            profile.spec_ops(),
            profile.wasted_spec_ops(),
            100.0 * profile.waste_fraction(),
        )
        .unwrap();
        writeln!(
            out,
            "{:>7}  {:>10}  {:>8}  {:>9}  {:>11}  {:<10}  instruction",
            "%cycles", "cycles", "stalls", "dispatch", "waste/spec", "pc"
        )
        .unwrap();
        for (pc, s) in &by_pc {
            let c = s.cycles + s.stall_cycles;
            let pct = if total > 0.0 { 100.0 * c / total } else { 0.0 };
            let insn = match mem.read_u32(*pc) {
                Ok(w) => I::disasm(w),
                Err(_) => "??".to_owned(),
            };
            writeln!(
                out,
                "{pct:>6.2}%  {:>10.1}  {:>8.1}  {:>9}  {:>5}/{:<5}  {pc:<#10x}  {insn}",
                s.cycles, s.stall_cycles, s.dispatches, s.wasted_spec_ops, s.spec_ops,
            )
            .unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_clock_buckets_translate_vs_retranslate() {
        let mut clock = OverheadClock::default();
        clock.note_translation(0x1000, 10);
        clock.note_translation(0x2000, 20);
        clock.note_translation(0x1000, 12); // seen before → retranslate
        assert_eq!(clock.translations, 2);
        assert_eq!(clock.retranslations, 1);
        assert_eq!(clock.translate_instrs, 30);
        assert_eq!(clock.retranslate_instrs, 12);

        let mut stats = RunStats::default();
        stats.chain.link_installs = 4;
        stats.chain.severs = 2;
        stats.interp_instrs = 7;
        let r = clock.report(&stats);
        assert!((r.translate_cycles - 30.0 * TRANSLATE_CYCLES_PER_INSTR).abs() < 1e-9);
        assert!((r.retranslate_cycles - 12.0 * TRANSLATE_CYCLES_PER_INSTR).abs() < 1e-9);
        assert!(
            (r.chain_cycles - (4.0 * CHAIN_INSTALL_CYCLES + 2.0 * CHAIN_SEVER_CYCLES)).abs() < 1e-9
        );
        assert!((r.interp_cycles - 7.0).abs() < 1e-9);
        assert!(r.total() > 0.0);
        assert!((r.per_base_instr(0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn timeline_is_bounded_and_counts_drops() {
        let mut p = GuestProfile::new().with_timeline_capacity(2);
        p.note_instant("degrade", 0x1000, 1);
        p.note_instant("degrade", 0x1000, 2);
        p.note_instant("degrade", 0x1000, 3);
        assert_eq!(p.timeline().len(), 2);
        assert_eq!(p.timeline_dropped(), 1);
    }

    #[test]
    fn chrome_trace_escapes_and_wraps() {
        let mut p = GuestProfile::new();
        p.note_instant("cast_out", 0x2000, 5);
        let json = chrome_trace_json(&p, "wl\"x");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with('}'));
        assert!(json.contains("wl\\\"x"));
        assert!(json.contains("\"ph\":\"i\""));
    }
}
