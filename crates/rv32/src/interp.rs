//! Architecturally-faithful RV32I interpreter: the reference semantics
//! the translator is checked against, and the fallback execution mode.
//!
//! Mirrors the PowerPC interpreter's contract exactly: `execute`
//! advances the PC only on success, faulting instructions leave all
//! architected state untouched (so the §3.5 recovery protocol can
//! re-execute them), and [`Cpu::handle_event`] either delivers traps to
//! the machine-mode vector (when [`Cpu::vectored`]) or surfaces them as
//! [`StopReason`]s.
//!
//! The machine is M-mode only with real addressing (no satp/paging),
//! and — like the rest of this reproduction's guest memory — the
//! memory image is big-endian.

use crate::insn::{decode, AluImmOp, AluOp, BranchCond, Insn, MemWidth, ShiftOp, Xr};
use daisy_isa::mem::Memory;
use daisy_isa::{Event, StopReason};

/// A machine-mode trap vector: all traps are delivered here
/// (direct mode; `mcause` disambiguates).
pub const TRAP_VECTOR: u32 = 0x100;

/// `mcause` values used by this machine.
pub mod mcause {
    /// Instruction access fault.
    pub const INSN_FAULT: u32 = 1;
    /// Illegal instruction.
    pub const ILLEGAL: u32 = 2;
    /// Breakpoint (`ebreak`).
    pub const BREAKPOINT: u32 = 3;
    /// Load access fault.
    pub const LOAD_FAULT: u32 = 5;
    /// Store access fault.
    pub const STORE_FAULT: u32 = 7;
    /// Environment call (`ecall`) from M-mode.
    pub const ECALL: u32 = 11;
    /// Machine external interrupt (interrupt bit set).
    pub const EXTERNAL: u32 = 0x8000_000B;
}

/// Decode memo keyed by instruction address; see
/// [`daisy_isa::DecodeCache`].
pub type DecodeCache = daisy_isa::DecodeCache<Insn>;

/// The architected RV32I machine state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cpu {
    /// Integer registers; `x[0]` is always zero.
    pub x: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// Machine exception PC (trap return address).
    pub mepc: u32,
    /// Machine trap cause.
    pub mcause: u32,
    /// Machine trap value (faulting address, when applicable).
    pub mtval: u32,
    /// Machine interrupt enable (`mstatus.MIE`).
    pub mie: bool,
    /// Saved interrupt enable (`mstatus.MPIE`).
    pub mpie: bool,
    /// When set, events vector to [`TRAP_VECTOR`] instead of stopping
    /// the interpreter.
    pub vectored: bool,
    /// Retired instruction count.
    pub ninstrs: u64,
}

impl Cpu {
    /// A fresh CPU at the given entry point: registers zero,
    /// interrupts disabled, non-vectored.
    pub fn new(entry: u32) -> Cpu {
        Cpu {
            x: [0; 32],
            pc: entry,
            mepc: 0,
            mcause: 0,
            mtval: 0,
            mie: false,
            mpie: false,
            vectored: false,
            ninstrs: 0,
        }
    }

    fn g(&self, r: Xr) -> u32 {
        self.x[r.0 as usize]
    }

    /// Writes a register, discarding writes to `x0`.
    pub fn set_x(&mut self, r: Xr, v: u32) {
        if r.0 != 0 {
            self.x[r.0 as usize] = v;
        }
    }

    /// Fetches and decodes the instruction at the current PC without
    /// executing it.
    pub fn fetch(&self, mem: &Memory) -> Result<Insn, Event> {
        mem.read_u32(self.pc).map(decode).map_err(|_| Event::Isi)
    }

    /// Like [`Cpu::fetch`], memoizing the decode through `dcache`. The
    /// raw word is still read every time (so self-modifying code is
    /// observed), but revisited words skip the decoder.
    pub fn fetch_cached(&self, mem: &Memory, dcache: &mut DecodeCache) -> Result<Insn, Event> {
        let word = mem.read_u32(self.pc).map_err(|_| Event::Isi)?;
        Ok(dcache.decode_at(self.pc, word, decode))
    }

    /// Executes one instruction. On [`Event::Continue`]/[`Event::Syscall`]
    /// the PC has advanced; on faults the PC still addresses the faulting
    /// instruction and no architected state has changed.
    pub fn step(&mut self, mem: &mut Memory) -> Event {
        match self.fetch(mem) {
            Ok(insn) => self.execute(mem, insn),
            Err(e) => e,
        }
    }

    /// Executes an already-decoded instruction at the current PC.
    pub fn execute(&mut self, mem: &mut Memory, insn: Insn) -> Event {
        let next = self.pc.wrapping_add(4);
        let ev = self.execute_inner(mem, insn, next);
        if matches!(ev, Event::Continue | Event::Syscall) {
            self.ninstrs += 1;
        }
        ev
    }

    fn ea(&self, rs1: Xr, off: i16) -> u32 {
        self.g(rs1).wrapping_add(off as i32 as u32)
    }

    #[allow(clippy::too_many_lines)]
    fn execute_inner(&mut self, mem: &mut Memory, insn: Insn, next: u32) -> Event {
        match insn {
            Insn::Lui { rd, imm } => self.set_x(rd, imm),
            Insn::Auipc { rd, imm } => self.set_x(rd, self.pc.wrapping_add(imm)),
            Insn::Jal { rd, off } => {
                let target = self.pc.wrapping_add(off as u32);
                self.set_x(rd, next);
                self.pc = target;
                return Event::Continue;
            }
            Insn::Jalr { rd, rs1, off } => {
                let target = self.ea(rs1, off) & !1;
                self.set_x(rd, next);
                self.pc = target;
                return Event::Continue;
            }
            Insn::Branch { cond, rs1, rs2, off } => {
                let (a, b) = (self.g(rs1), self.g(rs2));
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => (a as i32) < (b as i32),
                    BranchCond::Ge => (a as i32) >= (b as i32),
                    BranchCond::Ltu => a < b,
                    BranchCond::Geu => a >= b,
                };
                self.pc = if taken { self.pc.wrapping_add(off as i32 as u32) } else { next };
                return Event::Continue;
            }
            Insn::Load { rd, rs1, off, width, unsigned } => {
                let ea = self.ea(rs1, off);
                let read = match width {
                    MemWidth::Byte => mem.read_u8(ea).map(u32::from),
                    MemWidth::Half => mem.read_u16(ea).map(u32::from),
                    MemWidth::Word => mem.read_u32(ea),
                };
                let Ok(raw) = read else {
                    return Event::Dsi { addr: ea, write: false };
                };
                let v = match (width, unsigned) {
                    (MemWidth::Byte, false) => raw as u8 as i8 as i32 as u32,
                    (MemWidth::Half, false) => raw as u16 as i16 as i32 as u32,
                    _ => raw,
                };
                self.set_x(rd, v);
            }
            Insn::Store { rs2, rs1, off, width } => {
                let ea = self.ea(rs1, off);
                let v = self.g(rs2);
                let wrote = match width {
                    MemWidth::Byte => mem.write_u8(ea, v as u8),
                    MemWidth::Half => mem.write_u16(ea, v as u16),
                    MemWidth::Word => mem.write_u32(ea, v),
                };
                if wrote.is_err() {
                    return Event::Dsi { addr: ea, write: true };
                }
            }
            Insn::OpImm { op, rd, rs1, imm } => {
                let a = self.g(rs1);
                let i = imm as i32 as u32;
                let v = match op {
                    AluImmOp::Addi => a.wrapping_add(i),
                    AluImmOp::Slti => u32::from((a as i32) < (i as i32)),
                    AluImmOp::Sltiu => u32::from(a < i),
                    AluImmOp::Xori => a ^ i,
                    AluImmOp::Ori => a | i,
                    AluImmOp::Andi => a & i,
                };
                self.set_x(rd, v);
            }
            Insn::ShiftImm { op, rd, rs1, shamt } => {
                let a = self.g(rs1);
                let n = u32::from(shamt & 31);
                let v = match op {
                    ShiftOp::Sll => a << n,
                    ShiftOp::Srl => a >> n,
                    ShiftOp::Sra => ((a as i32) >> n) as u32,
                };
                self.set_x(rd, v);
            }
            Insn::Op { op, rd, rs1, rs2 } => {
                let (a, b) = (self.g(rs1), self.g(rs2));
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Slt => u32::from((a as i32) < (b as i32)),
                    AluOp::Sltu => u32::from(a < b),
                    AluOp::Xor => a ^ b,
                    AluOp::Or => a | b,
                    AluOp::And => a & b,
                };
                self.set_x(rd, v);
            }
            Insn::OpShift { op, rd, rs1, rs2 } => {
                let a = self.g(rs1);
                let n = self.g(rs2) & 31;
                let v = match op {
                    ShiftOp::Sll => a << n,
                    ShiftOp::Srl => a >> n,
                    ShiftOp::Sra => ((a as i32) >> n) as u32,
                };
                self.set_x(rd, v);
            }
            Insn::Fence => {}
            Insn::Ecall => {
                self.pc = next;
                return Event::Syscall;
            }
            Insn::Ebreak => return Event::Trap,
            Insn::Mret => {
                self.mie = self.mpie;
                self.mpie = true;
                self.pc = self.mepc;
                return Event::Continue;
            }
            Insn::Invalid(_) => return Event::Program,
        }
        self.pc = next;
        Event::Continue
    }

    /// Delivers a trap: saves the resume PC and cause/value CSRs,
    /// stacks the interrupt-enable bit, jumps to [`TRAP_VECTOR`].
    pub fn deliver(&mut self, cause: u32, tval: u32, at: u32) {
        self.mepc = at;
        self.mcause = cause;
        self.mtval = tval;
        self.mpie = self.mie;
        self.mie = false;
        self.pc = TRAP_VECTOR;
    }

    /// Resolves an interpreter event: delivers it to the trap vector
    /// (when [`Cpu::vectored`](Cpu)) or turns it into a stop.
    pub fn handle_event(&mut self, ev: Event) -> Option<StopReason> {
        match ev {
            Event::Continue => None,
            Event::Syscall => {
                if self.vectored {
                    self.deliver(mcause::ECALL, 0, self.pc);
                    None
                } else {
                    Some(StopReason::Syscall)
                }
            }
            Event::Trap => {
                if self.vectored {
                    self.deliver(mcause::BREAKPOINT, 0, self.pc);
                    None
                } else {
                    Some(StopReason::Trap)
                }
            }
            Event::Program => {
                if self.vectored {
                    self.deliver(mcause::ILLEGAL, 0, self.pc);
                    None
                } else {
                    Some(StopReason::Program)
                }
            }
            Event::Dsi { addr, write } => {
                if self.vectored {
                    let cause = if write { mcause::STORE_FAULT } else { mcause::LOAD_FAULT };
                    self.deliver(cause, addr, self.pc);
                    None
                } else {
                    Some(StopReason::StorageFault { addr, write, fetch: false })
                }
            }
            Event::Isi => {
                if self.vectored {
                    self.deliver(mcause::INSN_FAULT, self.pc, self.pc);
                    None
                } else {
                    Some(StopReason::StorageFault { addr: self.pc, write: false, fetch: true })
                }
            }
        }
    }

    /// Runs until a stop condition or `max_instrs` instructions.
    pub fn run(&mut self, mem: &mut Memory, max_instrs: u64) -> StopReason {
        self.run_traced(mem, max_instrs, |_, _| {})
    }

    /// Like [`Cpu::run`], invoking `trace(pc, insn)` for every
    /// successfully executed instruction.
    pub fn run_traced(
        &mut self,
        mem: &mut Memory,
        max_instrs: u64,
        mut trace: impl FnMut(u32, &Insn),
    ) -> StopReason {
        let limit = self.ninstrs.saturating_add(max_instrs);
        let mut dcache = DecodeCache::new(daisy_isa::IsaId::RV32);
        while self.ninstrs < limit {
            let pc = self.pc;
            let ev = match self.fetch_cached(mem, &mut dcache) {
                Ok(insn) => {
                    let ev = self.execute(mem, insn);
                    if matches!(ev, Event::Continue | Event::Syscall) {
                        trace(pc, &insn);
                    }
                    ev
                }
                Err(e) => e,
            };
            if let Some(stop) = self.handle_event(ev) {
                return stop;
            }
        }
        StopReason::MaxInstrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::encode;

    fn setup(words: &[u32]) -> (Cpu, Memory) {
        let mut mem = Memory::new(0x2_0000);
        for (i, w) in words.iter().enumerate() {
            mem.write_u32(0x1000 + 4 * i as u32, *w).unwrap();
        }
        (Cpu::new(0x1000), mem)
    }

    #[test]
    fn x0_is_pinned_to_zero() {
        let (mut cpu, mut mem) = setup(&[
            encode(&Insn::OpImm { op: AluImmOp::Addi, rd: Xr(0), rs1: Xr(0), imm: 7 }),
            encode(&Insn::Ecall),
        ]);
        assert_eq!(cpu.run(&mut mem, 100), StopReason::Syscall);
        assert_eq!(cpu.x[0], 0);
    }

    #[test]
    fn alu_branch_and_memory_roundtrip() {
        let (mut cpu, mut mem) = setup(&[
            // x5 = 0x1234; x6 = x5 << 4; store word; load back into x7
            encode(&Insn::Lui { rd: Xr(5), imm: 0x1000 }),
            encode(&Insn::OpImm { op: AluImmOp::Addi, rd: Xr(5), rs1: Xr(5), imm: 0x234 }),
            encode(&Insn::ShiftImm { op: ShiftOp::Sll, rd: Xr(6), rs1: Xr(5), shamt: 4 }),
            encode(&Insn::Store { rs2: Xr(6), rs1: Xr(5), off: 0, width: MemWidth::Word }),
            encode(&Insn::Load {
                rd: Xr(7),
                rs1: Xr(5),
                off: 0,
                width: MemWidth::Word,
                unsigned: false,
            }),
            encode(&Insn::Branch { cond: BranchCond::Eq, rs1: Xr(6), rs2: Xr(7), off: 8 }),
            encode(&Insn::Invalid(0)),
            encode(&Insn::Ecall),
        ]);
        assert_eq!(cpu.run(&mut mem, 100), StopReason::Syscall);
        assert_eq!(cpu.x[7], 0x1234 << 4);
    }

    #[test]
    fn jal_links_and_jalr_returns() {
        let (mut cpu, mut mem) = setup(&[
            encode(&Insn::Jal { rd: Xr(1), off: 8 }), // 0x1000 → 0x1008, x1 = 0x1004
            encode(&Insn::Ecall),                     // 0x1004
            encode(&Insn::Jalr { rd: Xr(0), rs1: Xr(1), off: 0 }), // 0x1008 → 0x1004
        ]);
        assert_eq!(cpu.run(&mut mem, 100), StopReason::Syscall);
        assert_eq!(cpu.x[1], 0x1004);
        assert_eq!(cpu.ninstrs, 3);
    }

    #[test]
    fn faulting_load_preserves_state_and_vectored_trap_delivers() {
        let (mut cpu, mut mem) = setup(&[encode(&Insn::Load {
            rd: Xr(5),
            rs1: Xr(0),
            off: -4,
            width: MemWidth::Word,
            unsigned: false,
        })]);
        let stop = cpu.run(&mut mem, 100);
        assert_eq!(
            stop,
            StopReason::StorageFault { addr: 0xFFFF_FFFC, write: false, fetch: false }
        );
        assert_eq!(cpu.pc, 0x1000, "PC still at the faulting instruction");

        // Vectored: the same fault lands on the trap vector with CSRs set.
        let (mut cpu, mut mem) = setup(&[encode(&Insn::Load {
            rd: Xr(5),
            rs1: Xr(0),
            off: -4,
            width: MemWidth::Word,
            unsigned: false,
        })]);
        cpu.vectored = true;
        let ev = cpu.step(&mut mem);
        assert_eq!(ev, Event::Dsi { addr: 0xFFFF_FFFC, write: false });
        assert!(cpu.handle_event(ev).is_none());
        assert_eq!(cpu.pc, TRAP_VECTOR);
        assert_eq!(cpu.mcause, mcause::LOAD_FAULT);
        assert_eq!(cpu.mtval, 0xFFFF_FFFC);
        assert_eq!(cpu.mepc, 0x1000);
    }

    #[test]
    fn mret_restores_interrupt_enable_and_resumes() {
        let (mut cpu, mut mem) = setup(&[encode(&Insn::Ebreak), encode(&Insn::Ecall)]);
        cpu.vectored = true;
        cpu.mie = true;
        mem.write_u32(TRAP_VECTOR, encode(&Insn::Mret)).unwrap();
        // ebreak traps (delivery retires no instruction), then the
        // handler's mret is the single instruction the budget allows:
        // it must restore mie from mpie and resume at mepc.
        let stop = cpu.run(&mut mem, 1);
        assert_eq!(stop, StopReason::MaxInstrs);
        assert_eq!(cpu.mepc, 0x1000);
        assert_eq!(cpu.pc, 0x1000);
        assert!(cpu.mie, "mret restored mie");
    }
}
