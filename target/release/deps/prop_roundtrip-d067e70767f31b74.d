/root/repo/target/release/deps/prop_roundtrip-d067e70767f31b74.d: crates/ppc/tests/prop_roundtrip.rs

/root/repo/target/release/deps/prop_roundtrip-d067e70767f31b74: crates/ppc/tests/prop_roundtrip.rs

crates/ppc/tests/prop_roundtrip.rs:
