//! Property tests for the PowerPC encode/decode pair.

use daisy_ppc::decode::decode;
use daisy_ppc::encode::encode;
use daisy_ppc::insn::{
    Arith2Op, ArithOp, CrOp, Insn, LogicImmOp, LogicOp, MemWidth, ShiftOp, UnaryOp,
};
use daisy_ppc::interp::rlw_mask;
use daisy_ppc::reg::{CrBit, CrField, Gpr, Spr};
use proptest::prelude::*;

fn gpr() -> impl Strategy<Value = Gpr> {
    (0u8..32).prop_map(Gpr)
}

fn crf() -> impl Strategy<Value = CrField> {
    (0u8..8).prop_map(CrField)
}

fn crbit() -> impl Strategy<Value = CrBit> {
    (0u8..32).prop_map(CrBit)
}

fn width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![Just(MemWidth::Byte), Just(MemWidth::Half), Just(MemWidth::Word)]
}

fn arith_op() -> impl Strategy<Value = ArithOp> {
    prop_oneof![
        Just(ArithOp::Add),
        Just(ArithOp::Addc),
        Just(ArithOp::Adde),
        Just(ArithOp::Subf),
        Just(ArithOp::Subfc),
        Just(ArithOp::Subfe),
        Just(ArithOp::Mullw),
        Just(ArithOp::Mulhw),
        Just(ArithOp::Mulhwu),
        Just(ArithOp::Divw),
        Just(ArithOp::Divwu),
    ]
}

fn logic_op() -> impl Strategy<Value = LogicOp> {
    prop_oneof![
        Just(LogicOp::And),
        Just(LogicOp::Or),
        Just(LogicOp::Xor),
        Just(LogicOp::Nand),
        Just(LogicOp::Nor),
        Just(LogicOp::Andc),
        Just(LogicOp::Orc),
        Just(LogicOp::Eqv),
    ]
}

/// Strategy over well-formed instructions (every field in range).
fn insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (gpr(), gpr(), any::<i16>()).prop_map(|(rt, ra, si)| Insn::Addi { rt, ra, si }),
        (gpr(), gpr(), any::<i16>()).prop_map(|(rt, ra, si)| Insn::Addis { rt, ra, si }),
        (gpr(), gpr(), any::<i16>(), any::<bool>()).prop_map(|(rt, ra, si, rc)| Insn::Addic {
            rt,
            ra,
            si,
            rc
        }),
        (gpr(), gpr(), any::<i16>()).prop_map(|(rt, ra, si)| Insn::Subfic { rt, ra, si }),
        (gpr(), gpr(), any::<i16>()).prop_map(|(rt, ra, si)| Insn::Mulli { rt, ra, si }),
        (arith_op(), gpr(), gpr(), gpr(), any::<bool>(), any::<bool>()).prop_map(
            |(op, rt, ra, rb, oe, rc)| Insn::Arith {
                op,
                rt,
                ra,
                rb,
                // mulhw/mulhwu architect no OE bit.
                oe: oe && !matches!(op, ArithOp::Mulhw | ArithOp::Mulhwu),
                rc,
            }
        ),
        (gpr(), gpr(), any::<bool>(), any::<bool>()).prop_map(|(rt, ra, oe, rc)| Insn::Arith2 {
            op: Arith2Op::Neg,
            rt,
            ra,
            oe,
            rc
        }),
        (logic_op(), gpr(), gpr(), gpr(), any::<bool>())
            .prop_map(|(op, ra, rs, rb, rc)| Insn::Logic { op, ra, rs, rb, rc }),
        (gpr(), gpr(), any::<u16>()).prop_map(|(ra, rs, ui)| Insn::LogicImm {
            op: LogicImmOp::Ori,
            ra,
            rs,
            ui
        }),
        (gpr(), gpr(), any::<u16>()).prop_map(|(ra, rs, ui)| Insn::LogicImm {
            op: LogicImmOp::Andi,
            ra,
            rs,
            ui
        }),
        (gpr(), gpr(), gpr(), any::<bool>()).prop_map(|(ra, rs, rb, rc)| Insn::Shift {
            op: ShiftOp::Sraw,
            ra,
            rs,
            rb,
            rc
        }),
        (gpr(), gpr(), 0u8..32, any::<bool>()).prop_map(|(ra, rs, sh, rc)| Insn::Srawi {
            ra,
            rs,
            sh,
            rc
        }),
        (gpr(), gpr(), 0u8..32, 0u8..32, 0u8..32, any::<bool>())
            .prop_map(|(ra, rs, sh, mb, me, rc)| Insn::Rlwinm { ra, rs, sh, mb, me, rc }),
        (gpr(), gpr(), 0u8..32, 0u8..32, 0u8..32, any::<bool>())
            .prop_map(|(ra, rs, sh, mb, me, rc)| Insn::Rlwimi { ra, rs, sh, mb, me, rc }),
        (gpr(), gpr(), any::<bool>()).prop_map(|(ra, rs, rc)| Insn::Unary {
            op: UnaryOp::Cntlzw,
            ra,
            rs,
            rc
        }),
        (crf(), any::<bool>(), gpr(), gpr()).prop_map(|(bf, signed, ra, rb)| Insn::Cmp {
            bf,
            signed,
            ra,
            rb
        }),
        (crf(), gpr(), any::<i16>()).prop_map(|(bf, ra, si)| Insn::CmpImm {
            bf,
            signed: true,
            ra,
            imm: i32::from(si)
        }),
        (crf(), gpr(), any::<u16>()).prop_map(|(bf, ra, ui)| Insn::CmpImm {
            bf,
            signed: false,
            ra,
            imm: i32::from(ui)
        }),
        (width(), any::<bool>(), any::<bool>(), gpr(), gpr(), gpr(), any::<i16>()).prop_map(
            |(width, update, indexed, rt, ra, rb, d)| Insn::Load {
                width,
                algebraic: false,
                update,
                indexed,
                rt,
                ra,
                rb: if indexed { rb } else { Gpr(0) },
                d: if indexed { 0 } else { d },
            }
        ),
        (any::<bool>(), any::<bool>(), gpr(), gpr(), gpr(), any::<i16>()).prop_map(
            |(update, indexed, rs, ra, rb, d)| Insn::Store {
                width: MemWidth::Word,
                update,
                indexed,
                rs,
                ra,
                rb: if indexed { rb } else { Gpr(0) },
                d: if indexed { 0 } else { d },
            }
        ),
        (gpr(), gpr(), any::<i16>()).prop_map(|(rt, ra, d)| Insn::Lmw { rt, ra, d }),
        (gpr(), gpr(), any::<i16>()).prop_map(|(rs, ra, d)| Insn::Stmw { rs, ra, d }),
        (any::<i32>(), any::<bool>(), any::<bool>()).prop_map(|(li, aa, lk)| Insn::BranchI {
            li: (li & 0x03FF_FFFC) << 6 >> 6,
            aa,
            lk
        }),
        (0u8..32, crbit(), any::<i16>(), any::<bool>())
            .prop_map(|(bo, bi, bd, lk)| { Insn::BranchC { bo, bi, bd: bd & !3, aa: false, lk } }),
        (0u8..32, crbit(), any::<bool>()).prop_map(|(bo, bi, lk)| Insn::BranchClr { bo, bi, lk }),
        (crbit(), crbit(), crbit()).prop_map(|(bt, ba, bb)| Insn::CrLogic {
            op: CrOp::Xor,
            bt,
            ba,
            bb
        }),
        (crf(), crf()).prop_map(|(bf, bfa)| Insn::Mcrf { bf, bfa }),
        gpr().prop_map(|rt| Insn::Mfcr { rt }),
        (any::<u8>(), gpr()).prop_map(|(fxm, rs)| Insn::Mtcrf { fxm, rs }),
        (gpr(), prop_oneof![Just(Spr::Lr), Just(Spr::Ctr), Just(Spr::Xer), Just(Spr::Srr0)])
            .prop_map(|(rt, spr)| Insn::Mfspr { rt, spr }),
        Just(Insn::Sc),
        Just(Insn::Rfi),
        Just(Insn::Sync),
        (0u8..32, gpr(), any::<i16>()).prop_map(|(to, ra, si)| Insn::Twi { to, ra, si }),
    ]
}

proptest! {
    /// Every well-formed instruction survives encode→decode.
    #[test]
    fn encode_decode_roundtrip(i in insn()) {
        let w = encode(&i);
        prop_assert_eq!(decode(w), i, "word {:#010x}", w);
    }

    /// Decoding any 32-bit word and re-encoding is a fixed point: the
    /// decoder never loses information it acts on (invalid words pass
    /// through verbatim).
    #[test]
    fn decode_encode_fixed_point(w in any::<u32>()) {
        let once = decode(w);
        let again = decode(encode(&once));
        prop_assert_eq!(once, again);
    }

    /// `rlw_mask` agrees with the bit-by-bit architectural definition.
    #[test]
    fn rlw_mask_matches_reference(mb in 0u8..32, me in 0u8..32) {
        let mut want = 0u32;
        let mut i = mb;
        loop {
            want |= 0x8000_0000 >> i;
            if i == me {
                break;
            }
            i = (i + 1) % 32;
        }
        prop_assert_eq!(rlw_mask(mb, me), want);
    }
}
