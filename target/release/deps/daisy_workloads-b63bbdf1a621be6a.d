/root/repo/target/release/deps/daisy_workloads-b63bbdf1a621be6a.d: crates/workloads/src/lib.rs crates/workloads/src/cmp.rs crates/workloads/src/compress.rs crates/workloads/src/fgrep.rs crates/workloads/src/hist.rs crates/workloads/src/lex.rs crates/workloads/src/sieve.rs crates/workloads/src/sort.rs crates/workloads/src/wc.rs crates/workloads/src/xlat.rs

/root/repo/target/release/deps/daisy_workloads-b63bbdf1a621be6a: crates/workloads/src/lib.rs crates/workloads/src/cmp.rs crates/workloads/src/compress.rs crates/workloads/src/fgrep.rs crates/workloads/src/hist.rs crates/workloads/src/lex.rs crates/workloads/src/sieve.rs crates/workloads/src/sort.rs crates/workloads/src/wc.rs crates/workloads/src/xlat.rs

crates/workloads/src/lib.rs:
crates/workloads/src/cmp.rs:
crates/workloads/src/compress.rs:
crates/workloads/src/fgrep.rs:
crates/workloads/src/hist.rs:
crates/workloads/src/lex.rs:
crates/workloads/src/sieve.rs:
crates/workloads/src/sort.rs:
crates/workloads/src/wc.rs:
crates/workloads/src/xlat.rs:
