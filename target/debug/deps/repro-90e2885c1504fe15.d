/root/repo/target/debug/deps/repro-90e2885c1504fe15.d: crates/bench/src/bin/repro.rs Cargo.toml

/root/repo/target/debug/deps/librepro-90e2885c1504fe15.rmeta: crates/bench/src/bin/repro.rs Cargo.toml

crates/bench/src/bin/repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
