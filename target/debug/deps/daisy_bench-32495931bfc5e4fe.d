/root/repo/target/debug/deps/daisy_bench-32495931bfc5e4fe.d: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libdaisy_bench-32495931bfc5e4fe.rlib: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libdaisy_bench-32495931bfc5e4fe.rmeta: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
crates/bench/src/tables.rs:
