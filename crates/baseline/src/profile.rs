//! Branch-profile collection: the "profile directed feedback
//! information from past emulations" that the paper's traditional
//! object-code translators (and its own Pathlist probabilities) can
//! consume.

use daisy_ppc::interp::{Cpu, Event};
use daisy_ppc::mem::Memory;
use std::collections::HashMap;

/// Per-branch execution counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchCounts {
    /// Times the branch executed.
    pub executed: u64,
    /// Times it was taken.
    pub taken: u64,
}

/// Runs the interpreter over a loaded image, recording, for every
/// conditional direct branch, how often it was taken. Returns the
/// taken-probability map the translator's `profile` knob accepts.
pub fn collect(mem: &mut Memory, entry: u32, max_instrs: u64) -> HashMap<u32, f64> {
    let mut cpu = Cpu::new(entry);
    let mut counts: HashMap<u32, BranchCounts> = HashMap::new();
    for _ in 0..max_instrs {
        let Ok(insn) = cpu.fetch(mem) else { break };
        let pc = cpu.pc;
        let conditional =
            insn.branch_info(pc).is_some_and(|i| !i.unconditional || i.decrements_ctr);
        match cpu.execute(mem, insn) {
            Event::Continue => {}
            _ => break,
        }
        if conditional {
            let c = counts.entry(pc).or_default();
            c.executed += 1;
            if cpu.pc != pc.wrapping_add(4) {
                c.taken += 1;
            }
        }
    }
    counts.into_iter().map(|(pc, c)| (pc, c.taken as f64 / c.executed.max(1) as f64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_ppc::asm::Asm;
    use daisy_ppc::reg::Gpr;

    #[test]
    fn loop_branch_profile_is_mostly_taken() {
        let mut a = Asm::new(0x1000);
        a.li(Gpr(4), 10);
        a.mtctr(Gpr(4));
        a.label("loop");
        a.addi(Gpr(3), Gpr(3), 1);
        a.bdnz("loop");
        a.sc();
        let prog = a.finish().unwrap();
        let mut mem = Memory::new(0x10000);
        prog.load_into(&mut mem).unwrap();
        let p = collect(&mut mem, prog.entry, 1_000);
        let bdnz_pc = prog.addr_of("loop") + 4;
        let taken = p[&bdnz_pc];
        assert!((taken - 0.9).abs() < 1e-9, "9 of 10 taken, got {taken}");
    }
}
