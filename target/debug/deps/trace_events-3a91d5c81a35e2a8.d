/root/repo/target/debug/deps/trace_events-3a91d5c81a35e2a8.d: tests/trace_events.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_events-3a91d5c81a35e2a8.rmeta: tests/trace_events.rs Cargo.toml

tests/trace_events.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
