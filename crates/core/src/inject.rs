//! Deterministic, seed-driven fault injection for the VMM.
//!
//! DAISY's compatibility claim is only as strong as its behaviour under
//! adversarial inputs: illegal opcodes, code rewritten mid-run, a
//! translation cache too small to hold the working set, interrupts
//! arriving at every group boundary, chain links cut out from under the
//! dispatch loop, translations dropped while hot. This module turns
//! each of those into a reproducible *campaign*: a [`FaultKind`] plus a
//! seed fully determine every perturbation, the perturbed
//! [`DaisySystem`] runs to completion on the degradation ladder (see
//! [`crate::error`]), and the final architected state — every guest
//! register ([`GuestCpu::state_diff`]) and all of memory — is diffed
//! bit for bit against the pure-interpreter oracle.
//!
//! Perturbations are applied at group boundaries via
//! [`DaisySystem::step`], mirroring the paper's §3.7 observation that
//! group boundaries are the points where every architected register is
//! exact. Faults that change guest-visible semantics (illegal-opcode
//! splices) are applied identically to the oracle's memory image, so
//! the differential contract is always "same program, same final
//! state".
//!
//! # Example
//!
//! ```
//! use daisy::inject::{run_campaign, CampaignConfig, FaultKind};
//!
//! let w = daisy_workloads::by_name("c_sieve").unwrap();
//! let out = run_campaign(&w, &CampaignConfig::new(FaultKind::ChainSever, 7)).unwrap();
//! assert!(out.injections > 0);
//! ```

use crate::error::{DaisyError, DegradeCause};
use crate::metrics::PostMortem;
use crate::stats::RunStats;
use crate::system::DaisySystem;
use crate::vmm::VmmStats;
use daisy_isa::mem::{Bus, Memory};
use daisy_isa::{Event, Exception, GuestCpu, Isa, Program, StopReason, Workload};
use std::fmt;

/// Factory for a fresh MMIO device tree: `(window base, window length,
/// device)`. Preemption campaigns instantiate it twice — once for the
/// perturbed system, once for the oracle — so both runs talk to
/// bit-identical device state.
pub type BusFactory = fn() -> (u32, u32, Box<dyn Bus>);

/// SplitMix64: a tiny, high-quality, dependency-free generator. One
/// seed fully determines a campaign's perturbation schedule.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..n` (`n > 0`; modulo bias is irrelevant
    /// at campaign scales).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// One family of deterministic perturbations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Illegal/reserved opcodes spliced into the guest text before the
    /// run (applied to the oracle image too: same program, same final
    /// state — both halt precisely at the first splice reached).
    IllegalOp,
    /// Idempotent rewrites of already-translated code words mid-run:
    /// architecturally invisible, but each one trips the §3.2
    /// translated bit and forces invalidation + retranslation.
    HotPatch,
    /// Translation-cache capacity clamped to one or two pages' worth of
    /// code, forcing continuous LRU cast-out thrash.
    CastOutThrash,
    /// An external interrupt posted at every group boundary; the guest
    /// image gets a pure-`rfi` handler at the external vector, so
    /// delivery is architecturally invisible except through SRR0/SRR1.
    InterruptStorm,
    /// Every chain link and inline indirect-cache entry severed at
    /// every group boundary.
    ChainSever,
    /// A randomly chosen live translation dropped out from under the
    /// dispatch loop every few boundaries.
    TranslationDrop,
    /// Preemption fuzzing: timer/device interrupts forced at
    /// seed-jittered group boundaries — phase-jittered single posts,
    /// back-to-back storms, and out-of-band UART RX bytes — against a
    /// guest that *handles* them (context-switching firmware), with the
    /// delivery schedule recorded and replayed instruction-exactly on
    /// the oracle. Not in [`FaultKind::ALL`]: it needs a bus factory
    /// ([`CampaignConfig::with_bus`]) and a clock-exact guest program
    /// (see `docs/soc.md`), so generic campaign matrices must not pick
    /// it up implicitly.
    Preempt,
}

impl FaultKind {
    /// Every fault kind, for exhaustive campaign matrices.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::IllegalOp,
        FaultKind::HotPatch,
        FaultKind::CastOutThrash,
        FaultKind::InterruptStorm,
        FaultKind::ChainSever,
        FaultKind::TranslationDrop,
    ];

    /// Short lowercase name, for CLIs and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::IllegalOp => "illegal_op",
            FaultKind::HotPatch => "hot_patch",
            FaultKind::CastOutThrash => "cast_out_thrash",
            FaultKind::InterruptStorm => "interrupt_storm",
            FaultKind::ChainSever => "chain_sever",
            FaultKind::TranslationDrop => "translation_drop",
            FaultKind::Preempt => "preempt",
        }
    }

    /// Parses a [`FaultKind::name`] back. Recognizes `preempt` even
    /// though it is excluded from [`FaultKind::ALL`].
    pub fn by_name(name: &str) -> Option<FaultKind> {
        if name == FaultKind::Preempt.name() {
            return Some(FaultKind::Preempt);
        }
        FaultKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The ladder cause this kind's forced degradations are recorded
    /// under.
    pub fn cause(self) -> DegradeCause {
        match self {
            FaultKind::IllegalOp => DegradeCause::IllegalOp,
            FaultKind::HotPatch => DegradeCause::CodeRewrite,
            FaultKind::CastOutThrash => DegradeCause::CastOutPressure,
            FaultKind::InterruptStorm => DegradeCause::InterruptStorm,
            FaultKind::ChainSever => DegradeCause::ChainUnstable,
            FaultKind::TranslationDrop => DegradeCause::TranslationDropped,
            FaultKind::Preempt => DegradeCause::InterruptStorm,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One campaign's full configuration. The `(kind, seed)` pair
/// determines every perturbation; the remaining knobs select the
/// system build under test.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Perturbation family.
    pub kind: FaultKind,
    /// Seed for the perturbation schedule.
    pub seed: u64,
    /// Run the packed engine (true, the default) or the reference tree
    /// engine, so campaigns can differentially test both.
    pub packed: bool,
    /// Start entries on the native host-code rung (default false): the
    /// campaign runs with [`crate::native`] enabled at a low compile
    /// threshold, so perturbations land while compiled x86-64 groups
    /// and patched native chains are live. A no-op on hosts without
    /// native support (the builder falls back to packed execution).
    pub native: bool,
    /// Enable direct group chaining (default true — chaining is where
    /// most of the recovery surface lives).
    pub chaining: bool,
    /// Ladder steps the campaign driver forces (spread over the run, at
    /// the then-current PC, recorded under [`FaultKind::cause`]), so
    /// every campaign also exercises the tree / conservative /
    /// interpret rungs. Default 3 — one full walk to the floor.
    pub max_degrades: u32,
    /// MMIO device-tree factory, required by [`FaultKind::Preempt`]
    /// campaigns (and ignored by every other kind): the campaign
    /// attaches one fresh instance to the perturbed system and one to
    /// the oracle, and diffs their snapshots bit for bit at the end.
    pub bus: Option<BusFactory>,
}

impl CampaignConfig {
    /// A default campaign: packed engine, chaining on, three forced
    /// ladder steps.
    pub fn new(kind: FaultKind, seed: u64) -> CampaignConfig {
        CampaignConfig {
            kind,
            seed,
            packed: true,
            native: false,
            chaining: true,
            max_degrades: 3,
            bus: None,
        }
    }

    /// The same campaign with the native host-code tier on (low
    /// threshold, so short campaign runs still reach compiled code).
    pub fn with_native(mut self) -> CampaignConfig {
        self.native = true;
        self
    }

    /// The same campaign with an MMIO device tree attached (required
    /// for [`FaultKind::Preempt`]).
    pub fn with_bus(mut self, factory: BusFactory) -> CampaignConfig {
        self.bus = Some(factory);
        self
    }
}

/// What a completed (non-diverging) campaign did.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Perturbation family.
    pub kind: FaultKind,
    /// Seed used.
    pub seed: u64,
    /// How the perturbed run stopped (always equal to the oracle's stop
    /// reason).
    pub stop: StopReason,
    /// Group boundaries stepped through.
    pub boundaries: u64,
    /// Individual perturbations applied.
    pub injections: u64,
    /// Ladder steps recorded (forced and organic).
    pub degradations: usize,
    /// External interrupts actually delivered to the guest (a subset of
    /// `injections` for preemption campaigns: posts coalesce while the
    /// guest runs with interrupts disabled).
    pub interrupts_taken: u64,
    /// Deliveries that landed at a boundary where the previous group
    /// ran on the native x86-64 tier — the rerolled back-edge yields
    /// the preemption fuzzer exists to hit.
    pub native_yield_preempts: u64,
    /// Engine statistics of the perturbed run.
    pub stats: RunStats,
    /// VMM statistics of the perturbed run.
    pub vmm_stats: VmmStats,
    /// The flight-recorder post-mortem captured at the run's last
    /// ladder degradation (see
    /// [`crate::system::DaisySystem::take_post_mortem`]); `None` only
    /// when the campaign forced no ladder steps (`max_degrades: 0`)
    /// and nothing degraded organically.
    pub post_mortem: Option<PostMortem>,
}

/// Why a campaign failed. Any of these in a CI smoke run is a real bug:
/// the system either died, ran away, or — worst — silently computed a
/// different answer than the architecture defines.
#[derive(Debug, Clone)]
pub enum CampaignError {
    /// Final architected state differed from the oracle.
    Divergence {
        /// Perturbation family.
        kind: FaultKind,
        /// Seed used.
        seed: u64,
        /// First mismatch found.
        what: String,
    },
    /// The system surfaced an unrecoverable [`DaisyError`].
    Run {
        /// Perturbation family.
        kind: FaultKind,
        /// Seed used.
        seed: u64,
        /// The underlying error.
        error: DaisyError,
    },
    /// The perturbed run exceeded its cycle budget (livelock).
    Budget {
        /// Perturbation family.
        kind: FaultKind,
        /// Seed used.
        seed: u64,
    },
    /// The campaign configuration is unusable for this fault kind.
    Config {
        /// Perturbation family.
        kind: FaultKind,
        /// What is missing or wrong.
        what: &'static str,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Divergence { kind, seed, what } => {
                write!(f, "campaign {kind} seed {seed}: state diverged from oracle: {what}")
            }
            CampaignError::Run { kind, seed, error } => {
                write!(f, "campaign {kind} seed {seed}: unrecoverable: {error}")
            }
            CampaignError::Budget { kind, seed } => {
                write!(f, "campaign {kind} seed {seed}: cycle budget exceeded (livelock?)")
            }
            CampaignError::Config { kind, what } => {
                write!(f, "campaign {kind}: bad configuration: {what}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// Appends the system's flight-recorder post-mortem to a divergence
/// description, so every [`CampaignError::Divergence`] report carries
/// the events, degradation chain, and metrics that led up to it.
fn with_post_mortem<I: Isa>(sys: &DaisySystem<I>, what: String) -> String {
    format!("{what}\n{}", sys.request_post_mortem("fault-injection divergence"))
}

/// An instruction word the frontend guarantees never decodes to a
/// valid instruction ([`Isa::illegal_words`]); the guarantee is
/// regression-tested per frontend so splices stay honest if a decoder
/// ever grows.
fn invalid_word<I: Isa>(rng: &mut Rng) -> u32 {
    let candidates = I::illegal_words();
    candidates[rng.below(candidates.len() as u64) as usize]
}

/// Splices `1 + seed%3` illegal words into the text region of `mem`
/// (call once per image — perturbed and oracle — with an identically
/// seeded generator so both see the same program).
fn splice_illegal<I: Isa>(rng: &mut Rng, prog: &Program, mem: &mut Memory) -> u64 {
    let n = 1 + rng.below(3);
    for _ in 0..n {
        let idx = rng.below(prog.code.len() as u64) as u32;
        let w = invalid_word::<I>(rng);
        // invariant: the text range was loaded into this memory by the
        // caller, so writes inside it cannot fault.
        let _ = mem.write_u32(prog.base + 4 * idx, w);
    }
    n
}

/// Runs one campaign of `cfg` over workload `w` and diffs the final
/// state against the pure-interpreter oracle.
///
/// # Errors
///
/// See [`CampaignError`].
pub fn run_campaign<I: Isa>(
    w: &Workload<I>,
    cfg: &CampaignConfig,
) -> Result<CampaignOutcome, CampaignError> {
    run_campaign_on_program::<I>(&w.program(), w.mem_size, w.max_instrs, cfg)
}

/// Runs one campaign of `cfg` over an arbitrary program image.
/// `oracle_budget` bounds the oracle interpreter (use the workload's
/// generous `max_instrs`); the perturbed run's cycle budget is derived
/// from the oracle's actual instruction count.
///
/// # Errors
///
/// See [`CampaignError`].
pub fn run_campaign_on_program<I: Isa>(
    prog: &Program,
    mem_size: u32,
    oracle_budget: u64,
    cfg: &CampaignConfig,
) -> Result<CampaignOutcome, CampaignError> {
    if cfg.kind == FaultKind::Preempt {
        return run_preempt_campaign_on_program::<I>(prog, mem_size, oracle_budget, cfg);
    }
    let kind = cfg.kind;
    let seed = cfg.seed;
    let storm = kind == FaultKind::InterruptStorm;
    let rfi_word = I::interrupt_return_word();

    // ---- Oracle: the pure interpreter on an identical image. ----
    let mut omem = Memory::new(mem_size);
    // invariant: workload images fit their own declared mem_size.
    prog.load_into(&mut omem).ok();
    let mut orng = Rng::new(seed);
    if kind == FaultKind::IllegalOp {
        splice_illegal::<I>(&mut orng, prog, &mut omem);
    }
    if storm {
        let _ = omem.write_u32(I::external_vector(), rfi_word);
    }
    let mut ocpu = <I::Cpu as GuestCpu>::new(prog.entry);
    if storm {
        ocpu.enable_interrupts();
    }
    let ostop = ocpu.interp_run(&mut omem, oracle_budget);
    if ostop == StopReason::MaxInstrs {
        // The oracle itself ran out of budget; nothing to compare
        // against at a well-defined point.
        return Err(CampaignError::Budget { kind, seed });
    }

    // ---- Perturbed system. ----
    let mut rng = Rng::new(seed);
    let mut builder = DaisySystem::<I>::builder()
        .mem_size(mem_size)
        .chaining(cfg.chaining)
        .packed_execution(cfg.packed)
        .native_execution(cfg.native)
        .native_threshold(2);
    if kind == FaultKind::CastOutThrash {
        // Tiny translation pages (so even the most compact workloads
        // span several) plus a capacity of roughly one or two pages'
        // translated code: every cross-page entry evicts the pool down
        // to a single page — continuous LRU cast-out thrash.
        builder = builder
            .translator(crate::sched::TranslatorConfig {
                page_size: 32,
                ..crate::sched::TranslatorConfig::default()
            })
            .code_capacity((1 + (seed % 2)) * 64);
    }
    let mut sys = builder.build();
    // invariant: same image, same fit as the oracle above.
    prog.load_into(&mut sys.mem).ok();
    sys.cpu.set_pc(prog.entry);
    let mut injections = 0u64;
    if kind == FaultKind::IllegalOp {
        injections = splice_illegal::<I>(&mut rng, prog, &mut sys.mem);
    }
    if storm {
        let _ = sys.mem.write_u32(I::external_vector(), rfi_word);
        sys.cpu.enable_interrupts();
    }

    let max_cycles = ocpu.instret().saturating_mul(8).saturating_add(100_000);
    let sparse_period = 3 + rng.below(5);
    let mut degrades_left = cfg.max_degrades;
    let mut boundaries = 0u64;

    let stop = loop {
        if sys.stats.cycles() >= max_cycles {
            return Err(CampaignError::Budget { kind, seed });
        }
        match kind {
            // Preempt dispatches to its own driver before this loop.
            FaultKind::IllegalOp | FaultKind::CastOutThrash | FaultKind::Preempt => {}
            FaultKind::InterruptStorm => {
                sys.post_external_interrupt();
                injections += 1;
            }
            FaultKind::ChainSever => {
                sys.sever_chains();
                injections += 1;
            }
            FaultKind::HotPatch => {
                if boundaries.is_multiple_of(sparse_period) {
                    let entries = sys.vmm.live_entries();
                    if !entries.is_empty() {
                        let e = entries[rng.below(entries.len() as u64) as usize];
                        if let Ok(word) = sys.mem.read_u32(e) {
                            // Architecturally idempotent — but the
                            // store trips the §3.2 translated bit and
                            // forces invalidation + retranslation.
                            let _ = sys.mem.write_u32(e, word);
                            injections += 1;
                        }
                    }
                }
            }
            FaultKind::TranslationDrop => {
                if boundaries.is_multiple_of(sparse_period) {
                    let entries = sys.vmm.live_entries();
                    if !entries.is_empty() {
                        let e = entries[rng.below(entries.len() as u64) as usize];
                        sys.vmm.drop_translation(e);
                        injections += 1;
                    }
                }
            }
        }
        // Ladder driver: walk the current PC's entry down a rung every
        // few boundaries (starting at the very first, so even runs that
        // halt immediately — an entry-point splice — take one step) so
        // every campaign exercises the whole ladder.
        if degrades_left > 0
            && boundaries.is_multiple_of(7)
            && sys.degrade(sys.cpu.pc(), kind.cause()).is_some()
        {
            degrades_left -= 1;
        }
        let stepped = sys.step();
        boundaries += 1;
        match stepped {
            Ok(None) => {}
            Ok(Some(stop)) => break stop,
            Err(error) => return Err(CampaignError::Run { kind, seed, error }),
        }
    };

    if stop != ostop {
        return Err(CampaignError::Divergence {
            kind,
            seed,
            what: with_post_mortem(
                &sys,
                format!("stop reason: daisy {stop:?} vs oracle {ostop:?}"),
            ),
        });
    }
    if let Some(what) = diff_state(&sys, &ocpu, &omem, storm) {
        return Err(CampaignError::Divergence { kind, seed, what: with_post_mortem(&sys, what) });
    }
    if kind == FaultKind::CastOutThrash {
        // The perturbation is the capacity clamp itself; each forced
        // eviction it causes is one injection.
        injections = sys.vmm.stats.cast_outs;
    }
    Ok(CampaignOutcome {
        kind,
        seed,
        stop,
        boundaries,
        injections,
        degradations: sys.degradations().len(),
        interrupts_taken: sys.stats.interrupts_taken,
        native_yield_preempts: sys.native_yield_preempts(),
        stats: sys.stats,
        vmm_stats: sys.vmm.stats,
        post_mortem: sys.take_post_mortem(),
    })
}

/// Preemption-fuzzing campaign: the inverse of the other kinds' flow.
///
/// The other campaigns run the oracle first because their perturbations
/// are architecturally invisible (or applied identically to both
/// images). A preemption campaign's perturbation — *when* each external
/// interrupt is taken — is decided by the perturbed run itself, so here
/// the perturbed system runs first with delivery recording on
/// ([`crate::system::DaisySystemBuilder::record_deliveries`]), and the
/// oracle then *replays* the recorded schedule: it single-steps the
/// interpreter and delivers each interrupt at the exact retired-
/// instruction count the translated run delivered it, asserting the
/// architected PC matches the recorded one. Out-of-band UART RX bytes
/// injected by the fuzzer are logged the same way (device clock, byte)
/// and re-injected at the same instants.
///
/// This replay contract leans on the retired-instruction clock
/// ([`RunStats::approx_base_instrs`]) being **exact**, which it is only
/// for guests free of unconditional non-linking branches — the SoC
/// firmware is written that way (see `docs/soc.md`). A guest that
/// breaks the contract fails loudly at the recorded-PC assertion.
///
/// At the end, stop reason, every architected register, all of RAM,
/// *and the device snapshot* (UART transcript included) are diffed bit
/// for bit.
fn run_preempt_campaign_on_program<I: Isa>(
    prog: &Program,
    mem_size: u32,
    oracle_budget: u64,
    cfg: &CampaignConfig,
) -> Result<CampaignOutcome, CampaignError> {
    let kind = cfg.kind;
    let seed = cfg.seed;
    let factory = cfg.bus.ok_or(CampaignError::Config {
        kind,
        what: "FaultKind::Preempt needs a bus factory: CampaignConfig::with_bus",
    })?;
    let rfi_word = I::interrupt_return_word();
    // Firmware images carry their own handler at the external vector;
    // anything else gets the storm treatment (pure-rfi handler splice)
    // so vanilla workloads remain usable for quick checks.
    let vector = I::external_vector();
    let code_end = prog.base + 4 * prog.code.len() as u32;
    let own_handler = prog.base <= vector && vector < code_end;
    let halt_at = prog.labels.get("halt").copied();

    // ---- Perturbed, recording run (first: its delivery schedule
    // defines the experiment the oracle replays). ----
    let mut rng = Rng::new(seed);
    let mut sys = DaisySystem::<I>::builder()
        .mem_size(mem_size)
        .chaining(cfg.chaining)
        .packed_execution(cfg.packed)
        .native_execution(cfg.native)
        .native_threshold(2)
        .record_deliveries(true)
        .build();
    let (bus_base, bus_len, dev) = factory();
    sys.mem.attach_bus(bus_base, bus_len, dev);
    // invariant: workload images fit their own declared mem_size.
    prog.load_into(&mut sys.mem).ok();
    sys.cpu.set_pc(prog.entry);
    if !own_handler {
        let _ = sys.mem.write_u32(vector, rfi_word);
        sys.cpu.enable_interrupts();
    }

    // Seed-driven schedule: phase-jittered single posts, occasional
    // back-to-back storms, and a bounded number of RX-byte injections.
    let jitter_period = 2 + rng.below(9);
    let mut storm_left = 0u64;
    let mut rx_budget = 4 + rng.below(13);
    let mut rx_log: Vec<(u64, u32)> = Vec::new();
    let mut injections = 0u64;
    let max_cycles = oracle_budget.saturating_mul(8).saturating_add(100_000);
    let mut degrades_left = cfg.max_degrades;
    let mut boundaries = 0u64;

    let stop = loop {
        if sys.stats.cycles() >= max_cycles {
            return Err(CampaignError::Budget { kind, seed });
        }
        if storm_left > 0 {
            storm_left -= 1;
            sys.post_external_interrupt();
            injections += 1;
        } else if rng.below(jitter_period) == 0 {
            if rng.below(6) == 0 {
                storm_left = 1 + rng.below(7);
            }
            sys.post_external_interrupt();
            injections += 1;
        }
        if rx_budget > 0 && rng.below(97) == 0 {
            rx_budget -= 1;
            let byte = 0x21 + rng.below(94) as u32; // printable ASCII
                                                    // The device clock may be stale from the previous boundary
                                                    // (a whole group has retired since): stamp it before
                                                    // injecting so the log instant is the one the oracle sees.
            let now = sys.stats.approx_base_instrs();
            sys.mem.set_bus_time(now);
            sys.mem.bus_host_inject(byte);
            rx_log.push((now, byte));
            injections += 1;
        }
        // Same ladder driver as the generic campaigns: every campaign
        // also exercises the tree / conservative / interpret rungs.
        if degrades_left > 0
            && boundaries.is_multiple_of(7)
            && sys.degrade(sys.cpu.pc(), kind.cause()).is_some()
        {
            degrades_left -= 1;
        }
        let stepped = sys.step();
        boundaries += 1;
        match stepped {
            Ok(None) => {}
            Ok(Some(stop)) => break stop,
            Err(error) => return Err(CampaignError::Run { kind, seed, error }),
        }
        // Firmware parks at its `halt` label with interrupts disabled
        // (the interpreter has no halt instruction); detect the park
        // instead of spinning out the budget.
        if let Some(h) = halt_at {
            if sys.cpu.pc() == h && !sys.cpu.interrupts_enabled() {
                break StopReason::Halted;
            }
        }
    };
    let deliveries: Vec<(u64, u32)> = sys.delivery_log().unwrap_or(&[]).to_vec();

    // ---- Oracle: single-stepped interpreter replaying the schedule. ----
    let mut omem = Memory::new(mem_size);
    let (obase, olen, odev) = factory();
    omem.attach_bus(obase, olen, odev);
    prog.load_into(&mut omem).ok();
    let mut ocpu = <I::Cpu as GuestCpu>::new(prog.entry);
    if !own_handler {
        let _ = omem.write_u32(vector, rfi_word);
        ocpu.enable_interrupts();
    }
    let mut di = 0usize;
    let mut ri = 0usize;
    let ostop = loop {
        let now = ocpu.instret();
        if now >= oracle_budget {
            break StopReason::MaxInstrs;
        }
        omem.set_bus_time(now);
        while ri < rx_log.len() && rx_log[ri].0 == now {
            omem.bus_host_inject(rx_log[ri].1);
            ri += 1;
        }
        if di < deliveries.len() && deliveries[di].0 == now {
            let (want_now, want_pc) = deliveries[di];
            let at = ocpu.pc();
            if at != want_pc {
                return Err(CampaignError::Divergence {
                    kind,
                    seed,
                    what: with_post_mortem(
                        &sys,
                        format!(
                            "delivery {di} replayed at instret {want_now}: oracle pc \
                             {at:#010x} vs recorded pc {want_pc:#010x} (retired-instruction \
                             clock drift? preempt campaigns need a clock-exact guest, see \
                             docs/soc.md)"
                        ),
                    ),
                });
            }
            ocpu.deliver(Exception::External, at);
            di += 1;
            continue;
        }
        if let Some(h) = halt_at {
            if di == deliveries.len() && ocpu.pc() == h && !ocpu.interrupts_enabled() {
                break StopReason::Halted;
            }
        }
        let ev = match ocpu.fetch(&omem) {
            Ok(insn) => ocpu.execute(&mut omem, insn),
            Err(e) => e,
        };
        if !matches!(ev, Event::Continue) {
            if let Some(stop) = ocpu.handle_event(ev) {
                break stop;
            }
        }
    };

    if stop != ostop {
        return Err(CampaignError::Divergence {
            kind,
            seed,
            what: with_post_mortem(
                &sys,
                format!("stop reason: daisy {stop:?} vs oracle {ostop:?}"),
            ),
        });
    }
    if let Some(what) = diff_state(&sys, &ocpu, &omem, false) {
        return Err(CampaignError::Divergence { kind, seed, what: with_post_mortem(&sys, what) });
    }
    // Device diff, snapshots taken at a common instant (the two runs'
    // final clocks differ by the halt-spin length, which is
    // architecturally invisible but shifts time-derived fields like a
    // timer's line level).
    let t = sys.stats.approx_base_instrs().max(ocpu.instret());
    sys.mem.set_bus_time(t);
    omem.set_bus_time(t);
    let (dsnap, osnap) = (sys.mem.bus_snapshot(), omem.bus_snapshot());
    if dsnap != osnap {
        let what = match (&dsnap, &osnap) {
            (Some(a), Some(b)) => match a.iter().zip(b.iter()).position(|(x, y)| x != y) {
                Some(at) => format!(
                    "device snapshot at byte {at}: {:#04x} vs oracle {:#04x} (lengths {} vs {})",
                    a[at],
                    b[at],
                    a.len(),
                    b.len()
                ),
                None => format!("device snapshot lengths: {} vs oracle {}", a.len(), b.len()),
            },
            _ => "device snapshot: one side has no bus".to_owned(),
        };
        return Err(CampaignError::Divergence { kind, seed, what: with_post_mortem(&sys, what) });
    }

    Ok(CampaignOutcome {
        kind,
        seed,
        stop,
        boundaries,
        injections,
        degradations: sys.degradations().len(),
        interrupts_taken: sys.stats.interrupts_taken,
        native_yield_preempts: sys.native_yield_preempts(),
        stats: sys.stats,
        vmm_stats: sys.vmm.stats,
        post_mortem: sys.take_post_mortem(),
    })
}

/// First architected-state mismatch between the perturbed system and
/// the oracle, if any. `skip_resume` excludes the guest's resume-point
/// bookkeeping (e.g. PowerPC SRR0/SRR1) — interrupt-storm campaigns
/// deliver interrupts the oracle never sees, and those are exactly the
/// registers an in-flight delivery is *supposed* to clobber (their
/// precision is asserted separately, per delivery, by the
/// interrupt-storm property tests).
fn diff_state<I: Isa>(
    sys: &DaisySystem<I>,
    ocpu: &I::Cpu,
    omem: &Memory,
    skip_resume: bool,
) -> Option<String> {
    if let Some(what) = sys.cpu.state_diff(ocpu, skip_resume) {
        return Some(what);
    }
    let size = sys.mem.size();
    if size != omem.size() {
        return Some(format!("mem size: {size} vs {}", omem.size()));
    }
    let (Ok(a), Ok(b)) = (sys.mem.read_bytes(0, size), omem.read_bytes(0, size)) else {
        // invariant: reading all of a memory's own size cannot fault.
        return Some("memory unreadable".to_owned());
    };
    if let Some(at) = a.iter().zip(b.iter()).position(|(x, y)| x != y) {
        return Some(format!("memory at {at:#x}: {:#04x} vs {:#04x}", a[at], b[at]));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_bounded() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for n in 1..50 {
            assert!(a.below(n) < n);
        }
    }

    #[test]
    fn invalid_words_really_are_invalid() {
        let mut rng = Rng::new(1);
        for _ in 0..32 {
            let w = invalid_word::<daisy_ppc::PpcIsa>(&mut rng);
            assert!(matches!(daisy_ppc::decode(w), daisy_ppc::Insn::Invalid(_)), "{w:#x}");
        }
    }

    #[test]
    fn fault_kind_names_round_trip() {
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::by_name(k.name()), Some(k));
        }
        // Preempt is deliberately outside ALL but must still parse.
        assert!(!FaultKind::ALL.contains(&FaultKind::Preempt));
        assert_eq!(FaultKind::by_name("preempt"), Some(FaultKind::Preempt));
        assert_eq!(FaultKind::by_name("nope"), None);
    }

    /// A preempt campaign without a bus factory is a typed
    /// configuration error, not a panic (the core crate's no-panic
    /// policy covers harness misuse too).
    #[test]
    fn preempt_without_bus_is_a_config_error() {
        let prog = Program {
            base: 0x1000,
            entry: 0x1000,
            code: vec![0x4400_0002], // sc
            data: Vec::new(),
            labels: std::collections::HashMap::new(),
        };
        let cfg = CampaignConfig::new(FaultKind::Preempt, 0);
        let err =
            run_campaign_on_program::<daisy_ppc::PpcIsa>(&prog, 0x1_0000, 1_000, &cfg).unwrap_err();
        assert!(matches!(err, CampaignError::Config { .. }), "{err}");
    }
}
