//! `c_sieve` — the Stanford integer benchmark's Sieve of Eratosthenes,
//! as measured in the paper (Table 5.1 reports it reaching 4.6
//! PowerPC instructions per VLIW).

use crate::Workload;
use daisy_ppc::asm::{Asm, Program};
use daisy_ppc::interp::Cpu;
use daisy_ppc::mem::Memory;
use daisy_ppc::reg::{CrField, Gpr};

const FLAGS: u32 = 0x2_0000;
const SIZE: i32 = 8190;
const ITERS: i16 = 3;

fn build() -> Program {
    let mut a = Asm::new(0x1000);
    let (count, iters, i, flag, prime, k, one, zero, base, size) =
        (Gpr(3), Gpr(16), Gpr(4), Gpr(5), Gpr(6), Gpr(7), Gpr(8), Gpr(9), Gpr(14), Gpr(15));
    let cr = CrField(0);

    a.li(count, 0);
    a.li(iters, ITERS);
    a.li32(base, FLAGS);
    a.li32(size, SIZE as u32);
    a.li(one, 1);
    a.li(zero, 0);

    a.label("outer");
    // memset(flags, 1, SIZE+1)
    a.li(i, 0);
    a.label("fill");
    a.stbx(one, base, i);
    a.addi(i, i, 1);
    a.cmpw(cr, i, size);
    a.ble(cr, "fill");

    a.li(i, 0);
    a.label("scan");
    a.lbzx(flag, base, i);
    a.cmpwi(cr, flag, 0);
    a.beq(cr, "next");
    // prime = i + i + 3; k = i + prime
    a.add(prime, i, i);
    a.addi(prime, prime, 3);
    a.add(k, i, prime);
    a.label("clear");
    a.cmpw(cr, k, size);
    a.bgt(cr, "counted");
    a.stbx(zero, base, k);
    a.add(k, k, prime);
    a.b("clear");
    a.label("counted");
    a.addi(count, count, 1);
    a.label("next");
    a.addi(i, i, 1);
    a.cmpw(cr, i, size);
    a.ble(cr, "scan");

    a.addi(iters, iters, -1);
    a.cmpwi(cr, iters, 0);
    a.bne(cr, "outer");
    a.sc();
    a.finish().expect("sieve assembles")
}

/// Rust recomputation of the sieve's prime count.
pub fn expected_count() -> u32 {
    let n = SIZE as usize;
    let mut flags = vec![true; n + 1];
    let mut count = 0u32;
    for i in 0..=n {
        if flags[i] {
            let prime = i + i + 3;
            let mut k = i + prime;
            while k <= n {
                flags[k] = false;
                k += prime;
            }
            count += 1;
        }
    }
    count * u32::from(ITERS as u16)
}

fn check(cpu: &Cpu, _mem: &Memory) -> Result<(), String> {
    let want = expected_count();
    if cpu.gpr[3] == want {
        Ok(())
    } else {
        Err(format!("prime count: got {}, want {want}", cpu.gpr[3]))
    }
}

/// The workload descriptor.
pub fn workload() -> Workload {
    Workload { name: "c_sieve", mem_size: 0x4_0000, max_instrs: 20_000_000, build, check }
}
