/root/repo/target/debug/deps/prop_roundtrip-e607fdea897fd474.d: crates/ppc/tests/prop_roundtrip.rs

/root/repo/target/debug/deps/prop_roundtrip-e607fdea897fd474: crates/ppc/tests/prop_roundtrip.rs

crates/ppc/tests/prop_roundtrip.rs:
