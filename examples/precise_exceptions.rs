//! Precise exceptions with an emulated operating system (paper §3.3,
//! §3.5).
//!
//! Translated code has been aggressively reordered — a load executes
//! speculatively above the branch guarding it — yet when it faults, the
//! VMM identifies the exact base instruction, loads DAR/DSISR/SRR0/SRR1
//! as the architecture requires, and vectors to the *translated* OS
//! handler at 0x300, which recovers and returns with `rfi`. No change
//! to the "OS" is needed.
//!
//! ```sh
//! cargo run --release --example precise_exceptions
//! ```

use daisy::prelude::*;
use daisy_ppc::insn::Insn;
use daisy_ppc::reg::Spr;
use daisy_ppc::vectors;
use daisy_ppc::PpcIsa;
use daisy_ppc::{Asm, Gpr};

fn main() {
    // User program: walks pointers, one of which is bad. The loads are
    // hoisted by the translator; the fault must still be precise.
    let mut a = Asm::new(0x1000);
    a.li(Gpr(3), 0); // sum
    a.li32(Gpr(9), 0x8000); // good pointer
    a.lwz(Gpr(4), 0, Gpr(9));
    a.add(Gpr(3), Gpr(3), Gpr(4));
    a.li32(Gpr(9), 0x00E0_0000); // bad pointer (beyond memory)
    a.lwz(Gpr(4), 0, Gpr(9)); // faults precisely here
    a.add(Gpr(3), Gpr(3), Gpr(4));
    a.sc();
    let prog = a.finish().unwrap();

    // "Operating system": a DSI handler that records the fault, stuffs
    // a recovery value into the faulting load's target, and resumes
    // after the faulting instruction.
    let mut os = Asm::new(vectors::DSI);
    os.emit(Insn::Mfspr { rt: Gpr(30), spr: Spr::Dar }); // faulting EA
    os.emit(Insn::Mfspr { rt: Gpr(31), spr: Spr::Srr0 }); // faulting insn
    os.li(Gpr(4), 7); // pretend the page was paged in with a 7
    os.addi(Gpr(31), Gpr(31), 4);
    os.emit(Insn::Mtspr { spr: Spr::Srr0, rs: Gpr(31) });
    os.rfi();
    let os_prog = os.finish().unwrap();

    let mut sys = DaisySystem::<PpcIsa>::builder().mem_size(0x20000).build();
    sys.load(&prog).unwrap();
    os_prog.load_into(&mut sys.mem).unwrap();
    sys.mem.write_u32(0x8000, 35).unwrap();
    sys.cpu.vectored = true;
    sys.run(1_000_000).unwrap();

    println!("OS handler saw DAR = {:#x} at SRR0-4 = {:#x}", sys.cpu.gpr[30], sys.cpu.gpr[31] - 4);
    println!("program result r3 = {} (35 + recovered 7)", sys.cpu.gpr[3]);
    println!("precise exceptions delivered: {}", sys.stats.exceptions);
    assert_eq!(sys.cpu.gpr[30], 0x00E0_0000);
    assert_eq!(sys.cpu.gpr[3], 42);
}
