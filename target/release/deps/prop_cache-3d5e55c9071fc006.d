/root/repo/target/release/deps/prop_cache-3d5e55c9071fc006.d: crates/cachesim/tests/prop_cache.rs

/root/repo/target/release/deps/prop_cache-3d5e55c9071fc006: crates/cachesim/tests/prop_cache.rs

crates/cachesim/tests/prop_cache.rs:
