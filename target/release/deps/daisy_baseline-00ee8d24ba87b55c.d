/root/repo/target/release/deps/daisy_baseline-00ee8d24ba87b55c.d: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

/root/repo/target/release/deps/libdaisy_baseline-00ee8d24ba87b55c.rlib: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

/root/repo/target/release/deps/libdaisy_baseline-00ee8d24ba87b55c.rmeta: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

crates/baseline/src/lib.rs:
crates/baseline/src/ppc604e.rs:
crates/baseline/src/profile.rs:
crates/baseline/src/trad.rs:
