/root/repo/target/debug/deps/daisy_ppc-6ed73b013b4e2f94.d: crates/ppc/src/lib.rs crates/ppc/src/asm.rs crates/ppc/src/decode.rs crates/ppc/src/encode.rs crates/ppc/src/insn.rs crates/ppc/src/interp.rs crates/ppc/src/mem.rs crates/ppc/src/parse.rs crates/ppc/src/reg.rs

/root/repo/target/debug/deps/libdaisy_ppc-6ed73b013b4e2f94.rmeta: crates/ppc/src/lib.rs crates/ppc/src/asm.rs crates/ppc/src/decode.rs crates/ppc/src/encode.rs crates/ppc/src/insn.rs crates/ppc/src/interp.rs crates/ppc/src/mem.rs crates/ppc/src/parse.rs crates/ppc/src/reg.rs

crates/ppc/src/lib.rs:
crates/ppc/src/asm.rs:
crates/ppc/src/decode.rs:
crates/ppc/src/encode.rs:
crates/ppc/src/insn.rs:
crates/ppc/src/interp.rs:
crates/ppc/src/mem.rs:
crates/ppc/src/parse.rs:
crates/ppc/src/reg.rs:
