//! The Virtual Machine Monitor: page-granular translation management
//! (paper Chapter 3).
//!
//! The VMM owns the translated-code area. Translations are created the
//! first time execution reaches an entry point ("VLIW translation
//! missing" / "invalid entry point" exceptions in the paper collapse,
//! in this functional model, into a map miss), are keyed by page, and
//! are destroyed when a store touches a page whose read-only
//! (translated) bit is set.
//!
//! Code layout uses the paper's *second* mapping option (start of
//! Ch. 3): a hash table from base address to translated code, with each
//! group allocated contiguously — "code for a translated page can be
//! contiguous … and there is less wastage". The first option's fixed
//! `N×` expansion factor is still tracked for the code-size statistics
//! of Table 5.1.

use crate::engine::GroupCode;
use crate::error::{Degradation, DegradeCause, Rung};
use crate::sched::{translate_group_with_hints, Hints, TierPolicy, TranslatorConfig, XlateCost};
use crate::trace::{Tier, TraceEvent, Tracer};
use daisy_isa::convert::BranchKind;
use daisy_isa::mem::Memory;
use daisy_isa::{DecodeCache, Event, GuestCpu, Isa, IsaId, PAGE_SIZE};
use std::collections::{HashMap, HashSet};
use std::marker::PhantomData;
use std::rc::Rc;

/// Where the translated-code area begins in VLIW address space
/// (paper Fig. 3.1 uses this same value).
pub const VLIW_BASE: u32 = 0x8000_0000;

/// VMM-level statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct VmmStats {
    /// Pages with at least one translation created.
    pub pages_translated: u64,
    /// Groups (entry points) translated.
    pub groups_translated: u64,
    /// Page translations destroyed by code modification.
    pub invalidations: u64,
    /// Page translations evicted to stay within the translated-code
    /// area's capacity (the paper's LRU page-frame pool).
    pub cast_outs: u64,
    /// Entry points retranslated with load speculation inhibited after
    /// repeated run-time aliasing (the paper's proposed-but-unbuilt
    /// remedy in Ch. 5, implemented here).
    pub alias_retranslations: u64,
    /// Entry points promoted to the hot tier (dropped for profile-guided
    /// retranslation under the wider [`TierPolicy`] settings).
    pub hot_promotions: u64,
    /// Bytes of translated VLIW code currently live.
    pub code_bytes: u64,
    /// Bytes of translated code ever produced (monotone; Fig. 5.4).
    pub code_bytes_total: u64,
    /// Interpret-ahead hint gatherings that ran out of budget before
    /// reaching a group boundary (each is recorded as a
    /// [`crate::error::DegradeCause::HintBudget`] degradation).
    pub hint_budget_exhausted: u64,
}

/// Direct-mapped per-page translation table. Entry points are 4-byte
/// aligned, so `page_size/4` slots cover every possible entry in the
/// page and lookup is a single array index by word-offset — the
/// dispatch path's inner probe is O(1) with no hashing or collision
/// chains.
#[derive(Debug)]
struct PageTable {
    slots: Box<[Option<Rc<GroupCode>>]>,
    live: usize,
}

impl PageTable {
    fn new(nslots: usize) -> PageTable {
        PageTable { slots: vec![None; nslots].into_boxed_slice(), live: 0 }
    }

    fn get(&self, slot: usize) -> Option<&Rc<GroupCode>> {
        self.slots.get(slot).and_then(Option::as_ref)
    }

    fn insert(&mut self, slot: usize, code: Rc<GroupCode>) {
        if self.slots[slot].replace(code).is_none() {
            self.live += 1;
        }
    }

    fn remove(&mut self, slot: usize) -> Option<Rc<GroupCode>> {
        let g = self.slots.get_mut(slot)?.take();
        if g.is_some() {
            self.live -= 1;
        }
        g
    }

    /// Live translations in slot order.
    fn groups(&self) -> impl Iterator<Item = &Rc<GroupCode>> {
        self.slots.iter().flatten()
    }
}

/// Key of one translated page: the guest ISA that produced the
/// translation plus the page index. Carrying the ISA id keeps the
/// shared translated-code area sound even when several frontends feed
/// the same pool — identical guest addresses from different ISAs can
/// never alias each other's translations.
type PageKey = (IsaId, u32);

/// The Virtual Machine Monitor's translation cache.
#[derive(Debug)]
pub struct Vmm<I: Isa> {
    /// Translator configuration (machine, page size, window…).
    pub cfg: TranslatorConfig,
    /// (ISA id, page index) → direct-mapped entry table for that page.
    pages: HashMap<PageKey, PageTable>,
    /// Per-page last-use tick for LRU cast-out.
    last_use: HashMap<PageKey, u64>,
    tick: u64,
    /// Capacity of the translated-code area, if bounded.
    capacity: Option<u64>,
    /// After this many alias restarts, an entry is retranslated with
    /// load speculation off (None = keep speculating, as the paper's
    /// measured system did).
    pub alias_retranslate_after: Option<u32>,
    alias_counts: HashMap<u32, u32>,
    no_spec_entries: HashSet<u32>,
    /// Profile-guided tiered retranslation (None = single-tier, the
    /// paper's measured configuration).
    pub tier_policy: Option<TierPolicy>,
    hot_entries: HashSet<u32>,
    next_code_addr: u32,
    /// Cumulative translation cost.
    pub cost: XlateCost,
    /// Counters.
    pub stats: VmmStats,
    /// Structured-event emission front-end (disabled by default; see
    /// [`crate::trace`]).
    pub tracer: Tracer,
    /// Log of every ladder step taken this run (see [`crate::error`]);
    /// the system appends its dispatch-path degradations here too, so
    /// one list holds the run's full fallback history.
    degradations: Vec<Degradation>,
    _isa: PhantomData<I>,
}

impl<I: Isa> Vmm<I> {
    /// Creates an empty VMM with the given translator configuration and
    /// an unbounded translated-code area.
    pub fn new(cfg: TranslatorConfig) -> Vmm<I> {
        Vmm {
            cfg,
            pages: HashMap::new(),
            last_use: HashMap::new(),
            tick: 0,
            capacity: None,
            alias_retranslate_after: None,
            alias_counts: HashMap::new(),
            no_spec_entries: HashSet::new(),
            tier_policy: None,
            hot_entries: HashSet::new(),
            next_code_addr: VLIW_BASE,
            cost: XlateCost::default(),
            stats: VmmStats::default(),
            tracer: Tracer::disabled(),
            degradations: Vec::new(),
            _isa: PhantomData,
        }
    }

    /// Bounds the translated-code area: when live code exceeds
    /// `bytes`, least-recently-used page translations are cast out
    /// (the paper's "pool of page frames in the upper part of VLIW real
    /// storage (discarding the least recently used ones in the pool)").
    /// An undersized pool thrashes, exactly as §5.1 warns.
    pub fn set_code_capacity(&mut self, bytes: Option<u64>) {
        self.capacity = bytes;
    }

    fn cast_out_lru(&mut self, keep: PageKey) {
        let Some(cap) = self.capacity else { return };
        while self.stats.code_bytes > cap && self.pages.len() > 1 {
            let Some((&victim, _)) = self
                .last_use
                .iter()
                .filter(|(p, _)| **p != keep && self.pages.contains_key(*p))
                .min_by_key(|(_, t)| **t)
            else {
                return;
            };
            if let Some(table) = self.pages.remove(&victim) {
                for g in table.groups() {
                    self.stats.code_bytes =
                        self.stats.code_bytes.saturating_sub(u64::from(g.group.code_bytes()));
                }
                self.stats.cast_outs += 1;
                self.tracer
                    .emit(|| TraceEvent::CastOut { page: victim.1, groups: table.live as u32 });
            }
            self.last_use.remove(&victim);
        }
    }

    fn page_of(&self, addr: u32) -> u32 {
        addr / self.cfg.page_size
    }

    /// Full translation-table key for `addr`: this frontend's ISA id
    /// plus the page index.
    fn page_key(&self, addr: u32) -> PageKey {
        (I::ID, self.page_of(addr))
    }

    /// Word-offset slot of `addr` within its page's direct-mapped table.
    fn slot_of(&self, addr: u32) -> usize {
        ((addr % self.cfg.page_size) / 4) as usize
    }

    /// Looks up the translation for `addr`, creating it (and marking
    /// the page's translated bit) on first use.
    pub fn entry(&mut self, mem: &mut Memory, addr: u32) -> Rc<GroupCode> {
        self.entry_with_cpu(mem, addr, None)
    }

    /// Like [`Vmm::entry`], with the architected CPU state available so
    /// interpretive compilation (paper Ch. 6) can interpret ahead from
    /// the entry point before scheduling.
    pub fn entry_with_cpu(
        &mut self,
        mem: &mut Memory,
        addr: u32,
        cpu: Option<&I::Cpu>,
    ) -> Rc<GroupCode> {
        let page = self.page_of(addr);
        let key = self.page_key(addr);
        let slot = self.slot_of(addr);
        self.tick += 1;
        let tick = self.tick;
        self.last_use.insert(key, tick);
        if let Some(g) = self.pages.get(&key).and_then(|t| t.get(slot)) {
            return Rc::clone(g);
        }
        // Pick the tier: hot entries (promoted by the profiler) rebuild
        // under the wider TierPolicy configuration; everything else uses
        // the base config. Conservative (no-load-speculation) mode from
        // repeated aliasing composes with either tier.
        let hot_cfg = self
            .tier_policy
            .as_ref()
            .filter(|_| self.hot_entries.contains(&addr))
            .map(|policy| policy.hot_config(&self.cfg));
        let tier = if hot_cfg.is_some() { Tier::Hot } else { Tier::Cold };
        let mut cfg = hot_cfg.unwrap_or_else(|| self.cfg.clone());
        if self.no_spec_entries.contains(&addr) {
            // This entry aliased too often: rebuild it conservatively.
            cfg.speculate_loads = false;
        }
        let hints = match cpu {
            Some(cpu) if cfg.interpretive => {
                let (hints, exhausted) = gather_hints::<I>(&cfg, mem, cpu, addr);
                if exhausted {
                    // The interpret-ahead window ran dry before a group
                    // boundary: the translation built below is sound
                    // but its hints are truncated. Surface it as a
                    // typed degradation instead of silently shipping a
                    // lower-quality translation.
                    self.record_degradation(Degradation {
                        entry: addr,
                        from: Rung::Packed,
                        to: Rung::Packed,
                        cause: DegradeCause::HintBudget,
                    });
                    self.stats.hint_budget_exhausted += 1;
                }
                hints
            }
            _ => Hints::default(),
        };
        let (group, cost) = translate_group_with_hints::<I>(&cfg, mem, addr, &hints);
        self.cost.add(&cost);
        self.stats.groups_translated += 1;
        // Lay the group's tree instructions out contiguously in the
        // translated-code area.
        let mut vliw_addrs = Vec::with_capacity(group.len());
        let mut at = self.next_code_addr;
        for v in &group.vliws {
            vliw_addrs.push(at);
            at = at.wrapping_add(v.code_bytes());
        }
        let bytes = at.wrapping_sub(self.next_code_addr);
        self.next_code_addr = at;
        self.stats.code_bytes += u64::from(bytes);
        self.stats.code_bytes_total += u64::from(bytes);

        // §3.2: mark every 4 KiB base-architecture unit we translated
        // from, so stores into it raise code-modification events. (A
        // group is contained in one translation page by construction;
        // translation pages are ≥ the 4 KiB unit or smaller — mark the
        // 4 KiB unit(s) covering the translation page.)
        let lo = page * self.cfg.page_size;
        let hi = lo + self.cfg.page_size - 1;
        let mut unit = lo / PAGE_SIZE * PAGE_SIZE;
        while unit <= hi {
            mem.set_translated_bit(unit);
            unit += PAGE_SIZE;
        }

        let nslots = (self.cfg.page_size / 4) as usize;
        let table = self.pages.entry(key).or_insert_with(|| {
            // First translation for this page.
            PageTable::new(nslots)
        });
        if table.live == 0 {
            self.stats.pages_translated += 1;
        }
        let nvliws = group.len() as u32;
        let conservative = !cfg.speculate_loads;
        let rc = Rc::new(GroupCode::new(group, vliw_addrs).with_tier(tier));
        table.insert(slot, Rc::clone(&rc));
        self.tracer.emit(|| TraceEvent::Translate {
            entry: addr,
            page,
            vliws: nvliws,
            code_bytes: bytes,
            tier,
            conservative,
        });
        // Stay within the translated-code area, casting out LRU pages
        // (their stale read-only bits are harmless: a store there takes
        // one spurious, idempotent code-modification service).
        self.cast_out_lru(key);
        rc
    }

    /// Records a run-time alias restart against the group entered at
    /// `entry`. When the configured threshold is crossed, the entry's
    /// translation is dropped and marked for conservative retranslation
    /// (no load-over-store motion) — the remedy the paper sketches for
    /// "benchmarks with high amounts of runtime aliasing".
    pub fn note_alias_restart(&mut self, entry: u32) {
        let Some(limit) = self.alias_retranslate_after else { return };
        let c = self.alias_counts.entry(entry).or_insert(0);
        *c += 1;
        if *c >= limit && self.no_spec_entries.insert(entry) {
            self.stats.alias_retranslations += 1;
            self.drop_entry(entry);
            self.tracer.emit(|| TraceEvent::AliasRetranslate { entry });
        }
    }

    /// Drops the translation for one entry point (leaving the page's
    /// other entries alone), so the next dispatch retranslates it.
    /// Inbound chain links sever automatically when the `Rc` drops.
    fn drop_entry(&mut self, entry: u32) {
        let key = self.page_key(entry);
        let slot = self.slot_of(entry);
        if let Some(table) = self.pages.get_mut(&key) {
            if let Some(g) = table.remove(slot) {
                self.stats.code_bytes =
                    self.stats.code_bytes.saturating_sub(u64::from(g.group.code_bytes()));
            }
        }
    }

    /// Promotes `entry` to the hot tier: its cold translation is
    /// dropped and the next dispatch rebuilds it under
    /// [`TierPolicy::hot_config`]. `dispatches` is the profiled count
    /// at promotion (carried into the trace event). Returns `false`
    /// when tiering is off or the entry was already hot.
    pub fn promote_hot(&mut self, entry: u32, dispatches: u64) -> bool {
        if self.tier_policy.is_none() || !self.hot_entries.insert(entry) {
            return false;
        }
        self.stats.hot_promotions += 1;
        self.drop_entry(entry);
        self.tracer.emit(|| TraceEvent::HotPromotion { entry, dispatches });
        true
    }

    /// Whether `entry` has been promoted to the hot tier.
    pub fn is_hot(&self, entry: u32) -> bool {
        self.hot_entries.contains(&entry)
    }

    /// Returns the existing translation for `addr`, if any — one page
    /// hash plus one array index.
    pub fn lookup(&self, addr: u32) -> Option<Rc<GroupCode>> {
        self.pages.get(&self.page_key(addr)).and_then(|t| t.get(self.slot_of(addr))).cloned()
    }

    /// Destroys every translation overlapping the 4 KiB base unit with
    /// index `unit_index` (a code-modification event, §3.2), clearing
    /// the unit's translated bit.
    pub fn invalidate_unit(&mut self, mem: &mut Memory, unit_index: u32) {
        let unit_lo = unit_index * PAGE_SIZE;
        let unit_hi = unit_lo + PAGE_SIZE - 1;
        let first_page = unit_lo / self.cfg.page_size;
        let last_page = unit_hi / self.cfg.page_size;
        for page in first_page..=last_page {
            if let Some(table) = self.pages.remove(&(I::ID, page)) {
                self.stats.invalidations += 1;
                for g in table.groups() {
                    self.stats.code_bytes =
                        self.stats.code_bytes.saturating_sub(u64::from(g.group.code_bytes()));
                }
                self.tracer.emit(|| TraceEvent::Invalidate { page });
            }
        }
        mem.clear_translated_bit(unit_lo);
    }

    /// Number of live translated pages.
    pub fn live_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of live groups (entry points).
    pub fn live_groups(&self) -> usize {
        self.pages.values().map(|t| t.live).sum()
    }

    /// Live code size under the paper's *first* mapping option: each
    /// translated page reserves `n×` its size regardless of use.
    pub fn fixed_expansion_bytes(&self, n: u32) -> u64 {
        self.pages.len() as u64 * u64::from(self.cfg.page_size) * u64::from(n)
    }

    /// Every ladder step taken so far this run, in order.
    pub fn degradations(&self) -> &[Degradation] {
        &self.degradations
    }

    /// Appends one ladder step to the run's degradation log and emits
    /// it as [`TraceEvent::Degraded`].
    pub(crate) fn record_degradation(&mut self, d: Degradation) {
        self.tracer.emit(|| TraceEvent::Degraded {
            entry: d.entry,
            from: d.from,
            to: d.to,
            cause: d.cause,
        });
        self.degradations.push(d);
    }

    /// Marks `entry` for conservative (no load speculation)
    /// retranslation and drops its current translation, exactly as the
    /// alias-restart threshold does — the ladder's third rung. Returns
    /// `false` if the entry was already conservative.
    pub fn force_conservative(&mut self, entry: u32) -> bool {
        let newly = self.no_spec_entries.insert(entry);
        self.drop_entry(entry);
        newly
    }

    /// Drops the translation for one entry point, forcing the next
    /// dispatch of it through retranslation. Inbound chain links sever
    /// automatically when the `Rc` drops. Returns `true` if a live
    /// translation was dropped.
    pub fn drop_translation(&mut self, entry: u32) -> bool {
        let live = self.lookup(entry).is_some();
        self.drop_entry(entry);
        live
    }

    /// Destroys every translation on the page containing `addr`
    /// (emitting [`TraceEvent::Invalidate`]), used when a page falls to
    /// the interpret rung. Returns the number of groups destroyed.
    pub fn drop_page_of(&mut self, addr: u32) -> usize {
        let page = self.page_of(addr);
        let Some(table) = self.pages.remove(&(I::ID, page)) else { return 0 };
        for g in table.groups() {
            self.stats.code_bytes =
                self.stats.code_bytes.saturating_sub(u64::from(g.group.code_bytes()));
        }
        self.tracer.emit(|| TraceEvent::Invalidate { page });
        table.live
    }

    /// Severs every outbound chain link and indirect-cache entry of
    /// every live translation, cutting the whole chain graph while the
    /// translations themselves stay live (the fault injector's
    /// chain-sever campaigns; the dispatch loop must recover through
    /// the VMM on every severed edge).
    pub fn sever_all_links(&mut self) {
        for table in self.pages.values() {
            for g in table.groups() {
                g.sever_outbound_links();
            }
        }
    }

    /// Entry points of every live translation, sorted ascending (the
    /// page map iterates in hash order; sorting keeps seed-driven
    /// injection campaigns deterministic).
    pub fn live_entries(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .pages
            .iter()
            .flat_map(|(&(_, page), table)| {
                table.slots.iter().enumerate().filter_map(move |(slot, g)| {
                    g.as_ref().map(|_| page * self.cfg.page_size + slot as u32 * 4)
                })
            })
            .collect();
        v.sort_unstable();
        v
    }
}

/// Interprets ahead of translation on cloned state, recording branch
/// outcomes and indirect targets — the paper's "interpreting each
/// instruction after decoding it … a potentially more accurate form of
/// branch prediction" (Ch. 6).
///
/// The second return is `true` when the interpret-ahead budget
/// (`window_size * 8` instructions) ran out before a natural stopping
/// point: the hints are then *truncated*, not complete, and the caller
/// must surface that as a typed [`Degradation`] rather than silently
/// building a lower-quality translation from them.
fn gather_hints<I: Isa>(
    cfg: &TranslatorConfig,
    mem: &Memory,
    cpu: &I::Cpu,
    addr: u32,
) -> (Hints, bool) {
    let mut sim_mem = mem.clone();
    let mut sim = cpu.clone();
    sim.set_pc(addr);
    let mut counts: HashMap<u32, (u64, u64)> = HashMap::new();
    let mut indirect = HashMap::new();
    let mut dcache = DecodeCache::<I::Insn>::new(I::ID);
    let budget = u64::from(cfg.window_size) * 8;
    let mut exhausted = true;
    for _ in 0..budget {
        let Ok(insn) = sim.fetch_cached(&sim_mem, &mut dcache) else {
            exhausted = false;
            break;
        };
        let pc = sim.pc();
        let info = I::branch_info(&insn, pc);
        if !matches!(sim.execute(&mut sim_mem, insn), Event::Continue) {
            exhausted = false;
            break;
        }
        if let Some(info) = info {
            match info.kind {
                BranchKind::Direct(_) => {
                    if !info.unconditional {
                        let c = counts.entry(pc).or_insert((0, 0));
                        c.0 += 1;
                        if sim.pc() != pc.wrapping_add(4) {
                            c.1 += 1;
                        }
                    }
                }
                BranchKind::ViaLr | BranchKind::ViaCtr => {
                    indirect.entry(pc).or_insert(sim.pc());
                }
            }
        }
    }
    let hints = Hints {
        taken_prob: counts
            .into_iter()
            .map(|(pc, (n, t))| (pc, t as f64 / n.max(1) as f64))
            .collect(),
        indirect_target: indirect,
    };
    (hints, exhausted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_ppc::asm::Asm;
    use daisy_ppc::reg::Gpr;

    fn mem_with_program() -> Memory {
        let mut a = Asm::new(0x1000);
        a.li(Gpr(3), 1);
        a.sc();
        let prog = a.finish().unwrap();
        let mut mem = Memory::new(0x20000);
        prog.load_into(&mut mem).unwrap();
        mem
    }

    #[test]
    fn translation_is_cached() {
        let mut mem = mem_with_program();
        let mut vmm = Vmm::<daisy_ppc::PpcIsa>::new(TranslatorConfig::default());
        let g1 = vmm.entry(&mut mem, 0x1000);
        let g2 = vmm.entry(&mut mem, 0x1000);
        assert!(Rc::ptr_eq(&g1, &g2));
        assert_eq!(vmm.stats.groups_translated, 1);
        assert!(mem.translated_bit(0x1000));
    }

    #[test]
    fn separate_entries_same_page() {
        let mut mem = mem_with_program();
        let mut vmm = Vmm::<daisy_ppc::PpcIsa>::new(TranslatorConfig::default());
        vmm.entry(&mut mem, 0x1000);
        vmm.entry(&mut mem, 0x1004);
        assert_eq!(vmm.stats.groups_translated, 2);
        assert_eq!(vmm.stats.pages_translated, 1);
        assert_eq!(vmm.live_groups(), 2);
    }

    #[test]
    fn invalidation_clears_page() {
        let mut mem = mem_with_program();
        let mut vmm = Vmm::<daisy_ppc::PpcIsa>::new(TranslatorConfig::default());
        vmm.entry(&mut mem, 0x1000);
        assert_eq!(vmm.live_pages(), 1);
        vmm.invalidate_unit(&mut mem, 0x1000 / daisy_ppc::PAGE_SIZE);
        assert_eq!(vmm.live_pages(), 0);
        assert!(!mem.translated_bit(0x1000));
        assert_eq!(vmm.stats.invalidations, 1);
        // Retranslation works and counts again.
        vmm.entry(&mut mem, 0x1000);
        assert_eq!(vmm.stats.groups_translated, 2);
    }

    #[test]
    fn code_layout_is_contiguous_from_vliw_base() {
        let mut mem = mem_with_program();
        let mut vmm = Vmm::<daisy_ppc::PpcIsa>::new(TranslatorConfig::default());
        let g = vmm.entry(&mut mem, 0x1000);
        assert_eq!(g.vliw_addrs[0], VLIW_BASE);
        for w in g.vliw_addrs.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(vmm.stats.code_bytes > 0);
    }

    #[test]
    fn lru_cast_out_evicts_cold_pages() {
        // Three single-entry pages with a capacity that holds ~one.
        let mut a = Asm::new(0x1000);
        for _ in 0..3 * 1024 {
            a.nop();
        }
        a.sc();
        let prog = a.finish().unwrap();
        let mut mem = Memory::new(0x20000);
        prog.load_into(&mut mem).unwrap();

        let mut vmm = Vmm::<daisy_ppc::PpcIsa>::new(TranslatorConfig::default());
        let g1 = vmm.entry(&mut mem, 0x1000);
        let one_page = u64::from(g1.group.code_bytes());
        vmm.set_code_capacity(Some(one_page + one_page / 2));
        vmm.entry(&mut mem, 0x2000); // casts out page 1 (LRU)
        assert_eq!(vmm.stats.cast_outs, 1);
        assert!(vmm.lookup(0x1000).is_none(), "page 1 was cast out");
        assert!(vmm.lookup(0x2000).is_some());
        assert!(vmm.stats.code_bytes <= one_page + one_page / 2);
        // Re-entry retranslates.
        vmm.entry(&mut mem, 0x1000);
        assert_eq!(vmm.stats.groups_translated, 3);
    }

    #[test]
    fn unbounded_vmm_never_casts_out() {
        let mut mem = mem_with_program();
        let mut vmm = Vmm::<daisy_ppc::PpcIsa>::new(TranslatorConfig::default());
        for i in 0..4 {
            vmm.entry(&mut mem, 0x1000 + 4 * i);
        }
        assert_eq!(vmm.stats.cast_outs, 0);
    }

    #[test]
    fn small_translation_pages_invalidate_with_their_unit() {
        // 256-byte translation pages: a store into the 4 KiB unit kills
        // all of them.
        let mut mem = mem_with_program();
        let cfg = TranslatorConfig { page_size: 256, ..TranslatorConfig::default() };
        let mut vmm = Vmm::<daisy_ppc::PpcIsa>::new(cfg);
        vmm.entry(&mut mem, 0x1000);
        vmm.entry(&mut mem, 0x1100);
        assert_eq!(vmm.live_pages(), 2);
        vmm.invalidate_unit(&mut mem, 1); // unit 1 = 0x1000..0x2000
        assert_eq!(vmm.live_pages(), 0);
    }
}
