//! Oracle parallelism (paper Chapter 6).
//!
//! "The amount of parallelism possible in a machine with unlimited
//! resources and which schedules every operation at the earliest
//! possible time allowed by control and data dependences." The oracle
//! scheduler consumes the *dynamic trace* (perfect branch resolution),
//! converts each base instruction to the same RISC primitives the
//! translator uses, and places every primitive at the earliest cycle
//! its inputs allow — optionally capped by a machine configuration to
//! get the paper's "practical intermediate points on the way to oracle
//! level parallelism".
//!
//! Dependences honored: register flow (true) dependences with full
//! renaming (anti/output ignored), store→load and store→store memory
//! dependences at word granularity. Loads may bypass stores they do
//! not conflict with, mirroring DAISY's own aggressive reordering.

use daisy_isa::convert::Flow;
use daisy_isa::mem::Memory;
use daisy_isa::{Event, GuestCpu, Isa, StopReason};
use daisy_vliw::machine::{MachineConfig, ResClass, ResCounts};
use daisy_vliw::op::OpKind;
use daisy_vliw::reg::NUM_REGS;
use std::collections::HashMap;

/// Outcome of an oracle scheduling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleResult {
    /// Base instructions in the trace.
    pub instrs: u64,
    /// RISC primitives scheduled.
    pub ops: u64,
    /// Schedule length in cycles.
    pub cycles: u64,
}

impl OracleResult {
    /// Oracle ILP: base instructions per cycle.
    pub fn ilp(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }
}

/// Streaming oracle scheduler: feed the dynamic trace one instruction
/// at a time.
#[derive(Debug)]
pub struct OracleScheduler {
    machine: Option<MachineConfig>,
    ready: [u64; NUM_REGS],
    store_ready: HashMap<u32, u64>,
    usage: Vec<ResCounts>,
    /// Earliest cycle that may still have room, per class
    /// (alu/load/store/branch). Cycles below a frontier are full for
    /// that class forever, so scans never revisit them.
    frontier: [u64; 4],
    max_cycle: u64,
    instrs: u64,
    ops: u64,
}

impl OracleScheduler {
    /// Unlimited resources when `machine` is `None`; otherwise each
    /// cycle is capped by the configuration (resource-constrained
    /// oracle).
    pub fn new(machine: Option<MachineConfig>) -> OracleScheduler {
        OracleScheduler {
            machine,
            ready: [0; NUM_REGS],
            store_ready: HashMap::new(),
            usage: Vec::new(),
            frontier: [0; 4],
            max_cycle: 0,
            instrs: 0,
            ops: 0,
        }
    }

    fn slot_for(&mut self, earliest: u64, class: Option<ResClass>, branch: bool) -> u64 {
        let Some(m) = &self.machine else { return earliest };
        let fi = if branch {
            3
        } else {
            match class {
                Some(ResClass::Alu) | None => 0,
                Some(ResClass::Load) => 1,
                Some(ResClass::Store) => 2,
            }
        };
        let start = earliest.max(self.frontier[fi]);
        let mut c = start;
        loop {
            let i = c as usize;
            if i >= self.usage.len() {
                self.usage.resize(i + 1, ResCounts::default());
            }
            let u = &mut self.usage[i];
            let fits = if branch {
                m.has_branch_room(u)
            } else {
                match class {
                    Some(cl) => m.has_room(u, cl),
                    None => true,
                }
            };
            if fits {
                if branch {
                    u.branches += 1;
                } else if let Some(cl) = class {
                    match cl {
                        ResClass::Alu => u.alu += 1,
                        ResClass::Load => u.loads += 1,
                        ResClass::Store => u.stores += 1,
                    }
                }
                // Cycles in start..c were full for this class; if the
                // scan began at the frontier they can never be offered
                // again, so advance it.
                if start == self.frontier[fi] {
                    self.frontier[fi] = c;
                }
                return c;
            }
            c += 1;
        }
    }

    /// Feeds one executed instruction of guest ISA `I`. `ea` is the
    /// effective address of a memory access, when the instruction makes
    /// one (pre-execution state); multi-word transfers pass their
    /// starting address.
    pub fn feed<I: Isa>(&mut self, pc: u32, insn: &I::Insn, ea: Option<u32>) {
        self.instrs += 1;
        let conv = I::convert(insn, pc);
        let mut mem_idx = 0u32;
        for op in &conv.ops {
            self.ops += 1;
            let mut start = op.srcs().iter().map(|s| self.ready[s.index()]).max().unwrap_or(0);
            let class = match op.kind {
                OpKind::Load { .. } => Some(ResClass::Load),
                OpKind::Store { .. } => Some(ResClass::Store),
                _ => Some(ResClass::Alu),
            };
            if let Some(base_ea) = ea {
                if op.kind.is_mem() {
                    let word = base_ea.wrapping_add(4 * mem_idx) / 4;
                    if let Some(&t) = self.store_ready.get(&word) {
                        start = start.max(t);
                    }
                    mem_idx += 1;
                }
            }
            let cycle = self.slot_for(start, class, false);
            let finish = cycle + 1;
            for d in [op.dest, op.dest2].into_iter().flatten() {
                self.ready[d.index()] = finish;
            }
            if op.kind.is_store() {
                if let Some(base_ea) = ea {
                    let word = base_ea.wrapping_add(4 * (mem_idx - 1)) / 4;
                    self.store_ready.insert(word, finish);
                }
            }
            self.max_cycle = self.max_cycle.max(finish);
        }
        // Branches consume a branch slot in resource mode but add no
        // dataflow constraint (perfect prediction).
        if matches!(
            conv.flow,
            Flow::Jump { .. }
                | Flow::CondJump { .. }
                | Flow::IndirectJump { .. }
                | Flow::CondIndirect { .. }
        ) && self.machine.is_some()
        {
            let c = self.slot_for(0, None, true);
            self.max_cycle = self.max_cycle.max(c + 1);
        }
    }

    /// Finishes the run.
    pub fn result(&self) -> OracleResult {
        OracleResult { instrs: self.instrs, ops: self.ops, cycles: self.max_cycle }
    }
}

/// Runs the guest's reference interpreter over a loaded program,
/// feeding the oracle scheduler with the dynamic trace.
pub fn run_oracle<I: Isa>(
    mem: &mut Memory,
    entry: u32,
    machine: Option<MachineConfig>,
    max_instrs: u64,
) -> OracleResult {
    let mut cpu = <I::Cpu as GuestCpu>::new(entry);
    let mut sched = OracleScheduler::new(machine);
    for _ in 0..max_instrs {
        let Ok(insn) = cpu.fetch(mem) else { break };
        let ea = cpu.effective_address(&insn);
        let pc = cpu.pc();
        let ev = cpu.execute(mem, insn);
        match ev {
            Event::Continue => sched.feed::<I>(pc, &insn, ea),
            _ => break,
        }
    }
    sched.result()
}

/// Convenience: interpret and schedule, returning `(oracle, stop)`.
pub fn run_oracle_to_stop<I: Isa>(
    mem: &mut Memory,
    entry: u32,
    machine: Option<MachineConfig>,
    max_instrs: u64,
) -> (OracleResult, StopReason) {
    let mut cpu = <I::Cpu as GuestCpu>::new(entry);
    let mut sched = OracleScheduler::new(machine);
    let mut n = 0u64;
    let stop = loop {
        if n >= max_instrs {
            break StopReason::MaxInstrs;
        }
        let insn = match cpu.fetch(mem) {
            Ok(i) => i,
            Err(_) => break StopReason::StorageFault { addr: cpu.pc(), write: false, fetch: true },
        };
        let ea = cpu.effective_address(&insn);
        let pc = cpu.pc();
        match cpu.execute(mem, insn) {
            Event::Continue => sched.feed::<I>(pc, &insn, ea),
            Event::Syscall => {
                sched.feed::<I>(pc, &insn, ea);
                break StopReason::Syscall;
            }
            Event::Trap => break StopReason::Trap,
            Event::Program => break StopReason::Program,
            Event::Dsi { addr, write } => {
                break StopReason::StorageFault { addr, write, fetch: false }
            }
            Event::Isi => {
                break StopReason::StorageFault { addr: cpu.pc(), write: false, fetch: true }
            }
        }
        n += 1;
    };
    (sched.result(), stop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daisy_ppc::asm::Asm;
    use daisy_ppc::reg::Gpr;

    fn oracle_of(build: impl FnOnce(&mut Asm), machine: Option<MachineConfig>) -> OracleResult {
        let mut a = Asm::new(0x1000);
        build(&mut a);
        let prog = a.finish().unwrap();
        let mut mem = Memory::new(0x40000);
        prog.load_into(&mut mem).unwrap();
        let (r, stop) =
            run_oracle_to_stop::<daisy_ppc::PpcIsa>(&mut mem, prog.entry, machine, 10_000_000);
        assert_eq!(stop, StopReason::Syscall);
        r
    }

    #[test]
    fn independent_ops_schedule_in_one_cycle() {
        let r = oracle_of(
            |a| {
                a.add(Gpr(3), Gpr(1), Gpr(2));
                a.add(Gpr(4), Gpr(1), Gpr(2));
                a.add(Gpr(5), Gpr(1), Gpr(2));
                a.sc();
            },
            None,
        );
        assert_eq!(r.cycles, 1);
        assert_eq!(r.instrs, 4); // incl. sc
    }

    #[test]
    fn dependence_chain_takes_one_cycle_each() {
        let r = oracle_of(
            |a| {
                a.add(Gpr(3), Gpr(1), Gpr(2));
                a.add(Gpr(4), Gpr(3), Gpr(3));
                a.add(Gpr(5), Gpr(4), Gpr(4));
                a.sc();
            },
            None,
        );
        assert_eq!(r.cycles, 3);
    }

    #[test]
    fn loop_iterations_overlap_with_renaming() {
        // A counted loop whose bodies are independent: oracle ILP far
        // exceeds 1 despite the sequential CTR updates... CTR itself
        // serializes at 1/cycle, so cycles ≈ iterations; the point is
        // the body does not add to the critical path.
        let r = oracle_of(
            |a| {
                a.li(Gpr(4), 50);
                a.mtctr(Gpr(4));
                a.label("loop");
                a.add(Gpr(3), Gpr(1), Gpr(2));
                a.add(Gpr(5), Gpr(1), Gpr(2));
                a.add(Gpr(6), Gpr(1), Gpr(2));
                a.bdnz("loop");
                a.sc();
            },
            None,
        );
        assert!(r.ilp() > 3.0, "oracle ILP {} should exceed 3", r.ilp());
    }

    #[test]
    fn store_load_flow_dependence_enforced() {
        let r = oracle_of(
            |a| {
                a.li32(Gpr(1), 0x9000);
                a.li(Gpr(3), 7);
                a.stw(Gpr(3), 0, Gpr(1));
                a.lwz(Gpr(4), 0, Gpr(1));
                a.add(Gpr(5), Gpr(4), Gpr(4));
                a.sc();
            },
            None,
        );
        // li32→(li,st) → ld → add is a 4-deep chain (store at cycle 2).
        assert!(r.cycles >= 4, "cycles = {}", r.cycles);
    }

    #[test]
    fn resource_cap_reduces_ilp() {
        let build = |a: &mut Asm| {
            for i in 0..16u8 {
                a.add(Gpr(3 + (i % 8)), Gpr(1), Gpr(2));
            }
            a.sc();
        };
        let unlimited = oracle_of(build, None);
        let capped = oracle_of(build, Some(MachineConfig::new(2, 2, 2, 1, 2)));
        assert!(unlimited.cycles < capped.cycles);
        assert!(capped.cycles >= 8); // 16 adds / 2 ALUs
    }
}
