//! Execution-engine throughput: end-to-end translate-and-run of the
//! workload suite (the simulation speed that makes the Chapter 5
//! sweeps practical).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use daisy::system::DaisySystem;
use std::hint::black_box;

fn bench_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("daisy_run");
    g.sample_size(10);
    for name in ["c_sieve", "wc", "fgrep"] {
        let w = daisy_workloads::by_name(name).unwrap();
        let prog = w.program();
        // Base instruction count for throughput reporting.
        let mut sys = DaisySystem::builder().mem_size(w.mem_size).build();
        sys.load(&prog).unwrap();
        sys.run(10 * w.max_instrs).unwrap();
        g.throughput(Throughput::Elements(sys.stats.vliws_executed));
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut sys = DaisySystem::builder().mem_size(w.mem_size).build();
                sys.load(&prog).unwrap();
                black_box(sys.run(10 * w.max_instrs).unwrap());
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_run);
criterion_main!(benches);
