//! Execution engine for translated VLIW tree code.
//!
//! Walks a group one tree instruction per cycle: conditions route the
//! root-to-leaf path, parcels on the path execute with the paper's
//! semantics — speculative parcels poison their (renamed) destinations
//! with exception tags instead of faulting (§2.1), commits move renamed
//! results into architected registers in program order, and bypassed
//! loads are *verified* at commit, restarting on a run-time alias
//! (Table 5.7). The cache hierarchy is probed per tree-instruction
//! fetch and per memory parcel.

use crate::precise::ArchEvent;
use crate::stats::RunStats;
use crate::trace::Tier;
use daisy_cachesim::Hierarchy;
use daisy_isa::mem::Memory;
use daisy_vliw::op::{
    compare, effective_address, effective_address_inline, eval, eval_inline, EvalOut, MemWidth,
    OpKind, Operation,
};
use daisy_vliw::packed::{OpClass, OpMeta, PackedCtrl, PackedGroup, BACKEDGE_VLIW_BUDGET};
use daisy_vliw::reg::{Reg, NUM_REGS};
use daisy_vliw::regfile::RegFile;
use daisy_vliw::tree::{Exit, Group, IndirectVia, NodeKind, VliwId, ROOT};
use std::cell::{Cell, RefCell};
use std::rc::{Rc, Weak};

/// Entries in each group's inline indirect-dispatch cache. The cache
/// is fully associative with round-robin replacement: indirect-branch
/// targets are group entries, which real programs align (dispatch
/// tables with power-of-two handler strides), so any way function
/// built from target bits collapses under exactly the workloads that
/// need the cache most. Eight entries cover the paper workloads'
/// largest indirect working set (xlat's translate dispatch) with room
/// to spare.
pub(crate) const ICACHE_WAYS: usize = 8;

/// One inline indirect-dispatch cache entry: the last translation seen
/// for a target reached through LR or CTR.
#[derive(Debug, Clone)]
struct IndirectEntry {
    target: u32,
    code: Weak<GroupCode>,
}

/// State of a chain link at dispatch time (see [`GroupCode::follow_link`]).
#[derive(Debug)]
pub enum ChainLink {
    /// A link is installed and its target translation is still live.
    Live(Rc<GroupCode>),
    /// No link has been installed for this exit yet.
    Empty,
    /// A link was installed but its target translation has since been
    /// dropped (code modification, cast-out, or alias retranslation).
    Severed,
}

/// A translated group plus the addresses its tree instructions occupy
/// in the translated-code area (for instruction-cache behaviour), plus
/// the direct-chaining state that lets the dispatch loop jump straight
/// to the next group without re-entering the VMM.
///
/// Chain links are [`Weak`]: the VMM's `pages` map holds the only
/// strong references to translations, so every path that destroys a
/// translation ([`crate::vmm::Vmm::invalidate_unit`], LRU cast-out,
/// [`crate::vmm::Vmm::note_alias_restart`]) severs all inbound links
/// simply by dropping the `Rc` — a dangling link can never be followed.
#[derive(Debug, Clone)]
pub struct GroupCode {
    /// The translated group (scheduling representation; kept for
    /// diagnostics, recovery, and the reference tree-walking engine).
    pub group: Group,
    /// The group lowered to the packed execution format the hot loop
    /// runs ([`run_group`]). Its exit-target table defines the chain
    /// link slots.
    pub packed: PackedGroup,
    /// Translated-code address of each tree instruction.
    pub vliw_addrs: Vec<u32>,
    /// Which translator tier produced this code (cold first-touch or
    /// profile-guided hot retranslation); carried so the profiler and
    /// trace events can attribute execution per tier.
    pub tier: Tier,
    /// Lazily installed group-to-group links, one slot per entry of
    /// the packed exit-target table.
    links: RefCell<Vec<Option<Weak<GroupCode>>>>,
    /// Inline dispatch cache for this group's indirect (LR/CTR) exits.
    icache: RefCell<[Option<IndirectEntry>; ICACHE_WAYS]>,
    /// Round-robin victim cursor for `icache` (advanced only when an
    /// install finds neither a matching tag nor an empty way).
    icache_victim: Cell<u8>,
}

impl GroupCode {
    /// Wraps a translated group, lowering it to the packed execution
    /// format and deriving one chain-link slot per static direct-branch
    /// exit target.
    pub fn new(group: Group, vliw_addrs: Vec<u32>) -> GroupCode {
        let packed = PackedGroup::lower(&group);
        let links = RefCell::new(vec![None; packed.exit_targets().len()]);
        GroupCode {
            group,
            packed,
            vliw_addrs,
            tier: Tier::Cold,
            links,
            icache: RefCell::new([const { None }; ICACHE_WAYS]),
            icache_victim: Cell::new(0),
        }
    }

    /// Sets the translation tier (builder style; the VMM tags hot
    /// retranslations before publishing the code).
    pub fn with_tier(mut self, tier: Tier) -> GroupCode {
        self.tier = tier;
        self
    }

    /// The link slot for a static direct-branch exit `target`, if the
    /// group has such an exit.
    pub fn exit_slot(&self, target: u32) -> Option<usize> {
        self.packed.exit_slot(target)
    }

    /// Resolves the chain link in `slot`.
    pub fn follow_link(&self, slot: usize) -> ChainLink {
        match &self.links.borrow()[slot] {
            None => ChainLink::Empty,
            Some(w) => match w.upgrade() {
                Some(code) => ChainLink::Live(code),
                None => ChainLink::Severed,
            },
        }
    }

    /// Installs (or replaces) the chain link in `slot`.
    pub fn install_link(&self, slot: usize, to: &Rc<GroupCode>) {
        self.links.borrow_mut()[slot] = Some(Rc::downgrade(to));
    }

    /// Removes the chain link in `slot` (after observing it severed).
    pub fn clear_link(&self, slot: usize) {
        self.links.borrow_mut()[slot] = None;
    }

    /// Looks up a live translation for an indirect-branch `target` in
    /// this group's inline dispatch cache. On a hit, also returns the
    /// way it was found in (the native tier mirrors per-way into the
    /// group's inline IBTC).
    pub fn icache_lookup(&self, target: u32) -> Option<(Rc<GroupCode>, usize)> {
        self.icache.borrow().iter().enumerate().find_map(|(way, e)| match e {
            Some(e) if e.target == target => Some((e.code.upgrade()?, way)),
            _ => None,
        })
    }

    /// Records the translation for an indirect-branch `target`,
    /// returning the way it landed in: a way already tagged `target`
    /// (possibly holding a dead weak ref), else the first empty way,
    /// else the round-robin victim.
    pub fn icache_install(&self, target: u32, to: &Rc<GroupCode>) -> usize {
        let mut cache = self.icache.borrow_mut();
        let way = cache
            .iter()
            .position(|e| e.as_ref().is_some_and(|e| e.target == target))
            .or_else(|| cache.iter().position(|e| e.is_none()))
            .unwrap_or_else(|| {
                let v = self.icache_victim.get() as usize;
                self.icache_victim.set(((v + 1) % ICACHE_WAYS) as u8);
                v
            });
        cache[way] = Some(IndirectEntry { target, code: Rc::downgrade(to) });
        way
    }

    /// Severs every outbound chain link and empties the inline
    /// indirect-dispatch cache. Inbound links sever on their own when
    /// the owning `Rc` drops; this is the outbound counterpart, used by
    /// [`crate::vmm::Vmm::sever_all_links`] (fault-injection campaigns)
    /// to cut the chain graph while translations stay live.
    pub fn sever_outbound_links(&self) {
        for l in self.links.borrow_mut().iter_mut() {
            *l = None;
        }
        *self.icache.borrow_mut() = [const { None }; ICACHE_WAYS];
        self.icache_victim.set(0);
    }
}

/// The kind of a precise exception raised by translated code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExcKind {
    /// Data storage fault at the given effective address.
    Dsi {
        /// Faulting effective address.
        addr: u32,
        /// True for a store.
        write: bool,
    },
    /// Trap instruction fired (program interrupt).
    Trap,
}

/// How a group finished executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupExit {
    /// Control leaves to a base-architecture address.
    Branch {
        /// Target base address.
        target: u32,
        /// `Some` for indirect branches (Table 5.6 typing).
        via: Option<IndirectVia>,
        /// Chain-link slot of this exit in the exiting group (`None`
        /// for indirect exits). Lowered into the packed format at
        /// translation time, so the dispatch loop installs and follows
        /// group-to-group links without re-searching the exit table.
        slot: Option<usize>,
    },
    /// The VMM must interpret the instruction at `addr`.
    Interp {
        /// Base address to interpret.
        addr: u32,
    },
    /// Precise exception; architected state is exact just before the
    /// instruction at `base_addr`.
    Exception {
        /// The fault.
        kind: ExcKind,
        /// The responsible base instruction (engine metadata; the VMM
        /// re-derives it with `precise::recover` and cross-checks).
        base_addr: u32,
        /// Architected events completed before the fault, for recovery.
        fault_idx: usize,
    },
    /// A store hit a page with its translated bit set (§3.2); resume by
    /// re-interpreting the modifying instruction at `addr` after
    /// invalidation.
    CodeModified {
        /// Address of the modifying instruction.
        addr: u32,
    },
    /// A bypassed load's commit saw different memory (run-time alias);
    /// restart at the load's instruction.
    AliasRestart {
        /// Address of the load instruction.
        addr: u32,
    },
    /// A memory parcel targets the MMIO window. Architected state is
    /// exact just before the instruction at `addr`; the VMM re-executes
    /// it on the interpreter so the device access (which may have side
    /// effects) happens exactly once, in program order. Every engine
    /// tier raises this *before* touching the device: a speculative
    /// MMIO load poisons its destination instead (tag info carries the
    /// MMIO flag) and the first non-speculative consumer — in practice
    /// the load's commit — converts the poison into this exit.
    Mmio {
        /// Address of the device-accessing instruction.
        addr: u32,
    },
}

#[derive(Debug, Clone, Copy)]
struct PendingLoad {
    ea: u32,
    width: MemWidth,
    algebraic: bool,
    value: u32,
}

/// Reusable per-dispatch engine state, threaded through
/// [`run_group`] so the hot dispatch loop performs no per-group
/// allocation or bulk re-initialisation.
///
/// The exception-tag and pending-load tables cover all [`NUM_REGS`]
/// registers (~3 KiB); rather than zeroing them on every dispatch, the
/// engine records which slots it populated and its internal reset
/// clears only those — on the common path (no speculative faults, no
/// bypassed loads) reset is just clearing the event vector's length.
#[derive(Debug)]
pub struct EngineScratch {
    /// Architected-commitment record for precise-exception recovery
    /// (§3.5); filled afresh by each [`run_group`] call.
    pub events: Vec<ArchEvent>,
    /// Retirement trace filled only by the profiled engine variants
    /// ([`run_group_profiled`] / [`run_group_tree_profiled`]): the
    /// absolute packed-node index of every tree node the dispatch
    /// visited, in execution order. The non-profiled engines never
    /// touch it (the `PROFILE` const generic compiles the recording
    /// out), so the hot loop stays provenance-free.
    pub(crate) visited: Vec<u32>,
    /// Per poisoned register: (faulting address, is-store, is-MMIO).
    tag_info: [Option<(u32, bool, bool)>; NUM_REGS],
    pending: [Option<PendingLoad>; NUM_REGS],
    touched: Vec<u8>,
}

impl EngineScratch {
    /// Creates empty scratch state.
    pub fn new() -> EngineScratch {
        EngineScratch {
            events: Vec::with_capacity(64),
            visited: Vec::new(),
            tag_info: [None; NUM_REGS],
            pending: [None; NUM_REGS],
            touched: Vec::with_capacity(8),
        }
    }

    /// Clears the event record and every table slot populated by the
    /// previous dispatch.
    pub(crate) fn reset(&mut self) {
        self.events.clear();
        self.visited.clear();
        for i in self.touched.drain(..) {
            self.tag_info[i as usize] = None;
            self.pending[i as usize] = None;
        }
    }

    /// Re-seeds one bypassed-load row (used by the native tier when it
    /// bails out of a group mid-way: still-live rows in the native
    /// pending table are rehydrated here so the packed resume's verify
    /// commits see them).
    pub(crate) fn set_pending(
        &mut self,
        i: usize,
        ea: u32,
        width: MemWidth,
        algebraic: bool,
        value: u32,
    ) {
        self.pending[i] = Some(PendingLoad { ea, width, algebraic, value });
        self.touched.push(i as u8);
    }
}

impl Default for EngineScratch {
    fn default() -> EngineScratch {
        EngineScratch::new()
    }
}

fn read_mem(mem: &Memory, ea: u32, width: MemWidth, algebraic: bool) -> Result<u32, ()> {
    match width {
        MemWidth::Byte => mem.read_u8(ea).map(u32::from).map_err(|_| ()),
        MemWidth::Half => mem
            .read_u16(ea)
            .map(|v| if algebraic { v as i16 as i32 as u32 } else { u32::from(v) })
            .map_err(|_| ()),
        MemWidth::Word => mem.read_u32(ea).map_err(|_| ()),
    }
}

fn write_mem(mem: &mut Memory, ea: u32, width: MemWidth, v: u32) -> Result<(), ()> {
    match width {
        MemWidth::Byte => mem.write_u8(ea, v as u8).map_err(|_| ()),
        MemWidth::Half => mem.write_u16(ea, v as u16).map_err(|_| ()),
        MemWidth::Word => mem.write_u32(ea, v).map_err(|_| ()),
    }
}

#[inline(always)]
fn read_mem_fast(mem: &Memory, ea: u32, width: MemWidth, algebraic: bool) -> Result<u32, ()> {
    match width {
        MemWidth::Byte => mem.read_u8_inline(ea).map(u32::from).map_err(|_| ()),
        MemWidth::Half => mem
            .read_u16_inline(ea)
            .map(|v| if algebraic { v as i16 as i32 as u32 } else { u32::from(v) })
            .map_err(|_| ()),
        MemWidth::Word => mem.read_u32_inline(ea).map_err(|_| ()),
    }
}

#[inline(always)]
fn write_mem_fast(mem: &mut Memory, ea: u32, width: MemWidth, v: u32) -> Result<(), ()> {
    match width {
        MemWidth::Byte => mem.write_u8_inline(ea, v as u8).map_err(|_| ()),
        MemWidth::Half => mem.write_u16_inline(ea, v as u16).map_err(|_| ()),
        MemWidth::Word => mem.write_u32_inline(ea, v).map_err(|_| ()),
    }
}

/// Executes one group to its exit on the packed execution format —
/// the simulation hot loop. Walks [`GroupCode::packed`]: per tree
/// instruction, conditions route through the flat node table and the
/// taken path's parcels execute as dense slices of the op arena.
///
/// `scratch` is reset and its event record filled with the
/// architected-commitment trail used for precise-exception recovery.
///
/// Observably identical to [`run_group_tree`] (same architected state,
/// same [`RunStats`], same exit, same event record); the property tests
/// in `tests/prop_packed.rs` pin that equivalence.
#[inline]
pub fn run_group(
    code: &GroupCode,
    rf: &mut RegFile,
    mem: &mut Memory,
    cache: &mut Hierarchy,
    stats: &mut RunStats,
    scratch: &mut EngineScratch,
) -> GroupExit {
    run_group_impl::<false, false>(code, rf, mem, cache, stats, scratch, ResumePoint::default())
}

/// Where a native bail-out left off inside a group: the packed engine
/// re-enters mid-group at exactly the parcel whose side effect was
/// about to happen.
///
/// All counters for work *before* this point were already merged from
/// the native counter block, so the resumed run must not re-count the
/// current tree instruction or reset the (already reconstructed)
/// scratch state — `run_group_resume` encodes those rules.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResumePoint {
    /// VLIW index of the bail site.
    pub vliw: usize,
    /// Absolute packed-node index of the bail site.
    pub node: usize,
    /// Absolute op-arena index of the first parcel still to execute.
    pub op: usize,
    /// Parcels already counted toward the current tree instruction's
    /// issue-histogram bucket (includes the whole bail node — the
    /// packed walk adds a node's parcels when it enters the node).
    pub parcels: usize,
    /// The `last_base` commit-dedup register at the bail.
    pub last_base: u32,
    /// Absolute `vliws_executed` at the bailing group's *entry*, so the
    /// resumed run enforces the same back-edge budget limit the native
    /// prologue snapshotted (`budget_base + BACKEDGE_VLIW_BUDGET`).
    pub budget_base: u64,
}

/// Resumes packed execution of `code` mid-group after a native-tier
/// bail-out. The caller (the native dispatcher) has already merged the
/// native counter deltas into `stats` and reconstructed `scratch` up
/// to the bail point, so this entry skips the per-dispatch scratch
/// reset and the current tree instruction's cycle/issue accounting.
#[inline]
pub fn run_group_resume(
    code: &GroupCode,
    rf: &mut RegFile,
    mem: &mut Memory,
    cache: &mut Hierarchy,
    stats: &mut RunStats,
    scratch: &mut EngineScratch,
    resume: ResumePoint,
) -> GroupExit {
    run_group_impl::<false, true>(code, rf, mem, cache, stats, scratch, resume)
}

/// [`run_group`] with guest-PC attribution enabled: identical
/// semantics, but additionally records the absolute packed-node index
/// of every visited tree node into the scratch state's `visited` list
/// so
/// retirement code (`daisy::profile`) can attribute cycles and
/// speculation waste per guest instruction. Kept as a separate
/// monomorphization so [`run_group`] compiles with zero recording code.
#[inline]
pub fn run_group_profiled(
    code: &GroupCode,
    rf: &mut RegFile,
    mem: &mut Memory,
    cache: &mut Hierarchy,
    stats: &mut RunStats,
    scratch: &mut EngineScratch,
) -> GroupExit {
    run_group_impl::<true, false>(code, rf, mem, cache, stats, scratch, ResumePoint::default())
}

fn run_group_impl<const PROFILE: bool, const RESUME: bool>(
    code: &GroupCode,
    rf: &mut RegFile,
    mem: &mut Memory,
    cache: &mut Hierarchy,
    stats: &mut RunStats,
    scratch: &mut EngineScratch,
    resume: ResumePoint,
) -> GroupExit {
    if !RESUME {
        scratch.reset();
    }
    let packed = &code.packed;
    let infinite = cache.is_infinite();
    let (vals, tags) = rf.arrays_mut();
    let mut last_base = if RESUME { resume.last_base } else { u32::MAX };
    let mut vliw = if RESUME { resume.vliw } else { 0usize };
    // Back-edge budget: a backward `Next` past this point leaves the
    // group at the loop header instead of iterating natively forever,
    // so the dispatch loop (ladder checks, timer) regains control. A
    // resumed run inherits the budget base its native prologue set.
    let backedge_limit =
        (if RESUME { resume.budget_base } else { stats.vliws_executed }) + BACKEDGE_VLIW_BUDGET;
    // True only for the first tree instruction of a resumed run: its
    // entry accounting already happened natively, and execution starts
    // mid-node at `resume.op`.
    let mut resuming = RESUME;

    // One completed base instruction per distinct originating address
    // (several parcels can share one base instruction).
    macro_rules! commit_base {
        ($op:expr) => {
            if last_base != $op.base_addr {
                last_base = $op.base_addr;
                stats.base_instrs += 1;
            }
        };
    }

    loop {
        if !resuming {
            stats.vliws_executed += 1;
            if !infinite {
                let iacc = cache.access_instr(code.vliw_addrs[vliw]);
                stats.stall_cycles += u64::from(iacc.penalty);
            }
        }

        let mut node = if resuming { resume.node } else { packed.roots[vliw] as usize };
        let mut parcels_this_vliw = if resuming { resume.parcels } else { 0usize };
        loop {
            if PROFILE {
                scratch.visited.push(node as u32);
            }
            let n = &packed.nodes[node];
            let first_op = if resuming { resume.op } else { n.start as usize };
            if !resuming {
                parcels_this_vliw += n.len as usize;
            }
            resuming = false;
            for k in first_op..(n.start + n.len) as usize {
                let op = &packed.ops[k];
                let m = &packed.meta[k];
                let (s0, s1, s2) = (m.s[0] as usize, m.s[1] as usize, m.s[2] as usize);
                let poisoned =
                    (tags[s0] & m.smask[0]) | (tags[s1] & m.smask[1]) | (tags[s2] & m.smask[2]);
                // Poison propagation / deferred faults (§2.1) and the
                // rare shapes (trap checks, load-verify commits) all go
                // through the one full-semantics interpreter.
                if poisoned || m.class == OpClass::General {
                    match exec_parcel_general(
                        op,
                        vals,
                        tags,
                        mem,
                        cache,
                        infinite,
                        stats,
                        scratch,
                        &mut last_base,
                    ) {
                        Ok(()) => continue,
                        Err(exit) => return exit,
                    }
                }
                match m.class {
                    // Committed single-destination value ops, by
                    // descending dynamic frequency. Lowering guarantees
                    // these have a destination and no carry-out.
                    OpClass::Copy => {
                        let d = m.d1 as usize;
                        vals[d] = vals[s0];
                        tags[d] = false;
                        scratch.tag_info[d] = None;
                        scratch.events.push(ArchEvent::Def { d1: Reg(m.d1), d2: None });
                        commit_base!(op);
                    }
                    OpClass::LoadImm => {
                        let d = m.d1 as usize;
                        vals[d] = op.imm as u32;
                        tags[d] = false;
                        scratch.tag_info[d] = None;
                        scratch.events.push(ArchEvent::Def { d1: Reg(m.d1), d2: None });
                        commit_base!(op);
                    }
                    OpClass::Add => {
                        let d = m.d1 as usize;
                        vals[d] = vals[s0].wrapping_add(vals[s1]);
                        tags[d] = false;
                        scratch.tag_info[d] = None;
                        scratch.events.push(ArchEvent::Def { d1: Reg(m.d1), d2: None });
                        commit_base!(op);
                    }
                    OpClass::AddImm => {
                        let d = m.d1 as usize;
                        vals[d] = vals[s0].wrapping_add(op.imm as u32);
                        tags[d] = false;
                        scratch.tag_info[d] = None;
                        scratch.events.push(ArchEvent::Def { d1: Reg(m.d1), d2: None });
                        commit_base!(op);
                    }
                    OpClass::CmpSImm => {
                        let d = m.d1 as usize;
                        vals[d] = compare(vals[s0], op.imm as u32, true, vals[s1] & 1 != 0);
                        tags[d] = false;
                        scratch.tag_info[d] = None;
                        scratch.events.push(ArchEvent::Def { d1: Reg(m.d1), d2: None });
                        commit_base!(op);
                    }
                    OpClass::RotlImmMask => {
                        let d = m.d1 as usize;
                        vals[d] = vals[s0].rotate_left(op.imm as u32 & 31) & op.imm2;
                        tags[d] = false;
                        scratch.tag_info[d] = None;
                        scratch.events.push(ArchEvent::Def { d1: Reg(m.d1), d2: None });
                        commit_base!(op);
                    }
                    OpClass::Value => {
                        let sv = [vals[s0], vals[s1], vals[s2]];
                        let EvalOut::Value { v, carry } = eval_inline(op, &sv[..m.nsrc as usize])
                        else {
                            unreachable!("non-memory ops evaluate to values")
                        };
                        if m.d1 != OpMeta::NONE {
                            let d = m.d1 as usize;
                            vals[d] = v;
                            tags[d] = false;
                            scratch.tag_info[d] = None;
                        }
                        if m.d2 != OpMeta::NONE {
                            let d2 = m.d2 as usize;
                            vals[d2] = u32::from(carry.unwrap_or(false));
                            tags[d2] = false;
                            scratch.tag_info[d2] = None;
                        }
                        if m.d1 != OpMeta::NONE {
                            scratch.events.push(ArchEvent::Def { d1: Reg(m.d1), d2: op.dest2 });
                            commit_base!(op);
                        }
                    }
                    OpClass::SpecValue => {
                        let sv = [vals[s0], vals[s1], vals[s2]];
                        let EvalOut::Value { v, carry } = eval_inline(op, &sv[..m.nsrc as usize])
                        else {
                            unreachable!("non-memory ops evaluate to values")
                        };
                        if m.d1 != OpMeta::NONE {
                            let d = m.d1 as usize;
                            vals[d] = v;
                            tags[d] = false;
                            scratch.tag_info[d] = None;
                        }
                        if m.d2 != OpMeta::NONE {
                            let d2 = m.d2 as usize;
                            vals[d2] = u32::from(carry.unwrap_or(false));
                            tags[d2] = false;
                            scratch.tag_info[d2] = None;
                        }
                    }
                    OpClass::Load => {
                        let OpKind::Load { width, algebraic } = op.kind else {
                            unreachable!("Load class carries a load op")
                        };
                        let sv = [vals[s0], vals[s1], vals[s2]];
                        let ea = effective_address_inline(op, &sv[..m.nsrc as usize]);
                        // Device reads have side effects: never touch
                        // the MMIO window from translated code. A
                        // speculative MMIO load poisons like a fault
                        // (flagged so its commit bails instead of
                        // raising a DSI); a non-speculative one bails
                        // to the interpreter here, state exact.
                        if mem.is_mmio_inline(ea) {
                            if op.speculative {
                                let d = m.d1 as usize;
                                vals[d] = 0;
                                tags[d] = true;
                                scratch.tag_info[d] = Some((ea, false, true));
                                scratch.touched.push(d as u8);
                                continue;
                            }
                            return GroupExit::Mmio { addr: op.base_addr };
                        }
                        match read_mem_fast(mem, ea, width, algebraic) {
                            Ok(v) => {
                                if !infinite {
                                    let acc = cache.access_data(ea, false);
                                    if acc.l0_miss {
                                        stats.load_l0_misses += 1;
                                    }
                                    stats.stall_cycles += u64::from(acc.penalty);
                                }
                                stats.loads += 1;
                                let d = m.d1 as usize;
                                vals[d] = v;
                                tags[d] = false;
                                scratch.tag_info[d] = None;
                                if op.bypassed_store {
                                    scratch.pending[d] =
                                        Some(PendingLoad { ea, width, algebraic, value: v });
                                    scratch.touched.push(d as u8);
                                }
                                if !op.speculative {
                                    scratch.events.push(ArchEvent::Def { d1: Reg(m.d1), d2: None });
                                    commit_base!(op);
                                }
                            }
                            Err(()) => {
                                if op.speculative {
                                    // "A speculative operation that
                                    // causes an error … just sets the
                                    // exception tag bit."
                                    let d = m.d1 as usize;
                                    vals[d] = 0;
                                    tags[d] = true;
                                    scratch.tag_info[d] = Some((ea, false, false));
                                    scratch.touched.push(d as u8);
                                } else {
                                    return GroupExit::Exception {
                                        kind: ExcKind::Dsi { addr: ea, write: false },
                                        base_addr: op.base_addr,
                                        fault_idx: scratch.events.len(),
                                    };
                                }
                            }
                        }
                    }
                    OpClass::Store => {
                        let OpKind::Store { width } = op.kind else {
                            unreachable!("Store class carries a store op")
                        };
                        let sv = [vals[s0], vals[s1], vals[s2]];
                        let ea = effective_address_inline(op, &sv[..m.nsrc as usize]);
                        // Stores are never speculative; bail to the
                        // interpreter before the device sees the write.
                        if mem.is_mmio_inline(ea) {
                            return GroupExit::Mmio { addr: op.base_addr };
                        }
                        match write_mem_fast(mem, ea, width, sv[0]) {
                            Ok(()) => {
                                if !infinite {
                                    let acc = cache.access_data(ea, true);
                                    if acc.l0_miss {
                                        stats.store_l0_misses += 1;
                                    }
                                    stats.stall_cycles += u64::from(acc.penalty);
                                }
                                stats.stores += 1;
                                scratch.events.push(ArchEvent::Store);
                                commit_base!(op);
                                if mem.has_code_writes_inline() {
                                    stats.code_modifications += 1;
                                    return GroupExit::CodeModified { addr: op.base_addr };
                                }
                            }
                            Err(()) => {
                                return GroupExit::Exception {
                                    kind: ExcKind::Dsi { addr: ea, write: true },
                                    base_addr: op.base_addr,
                                    fault_idx: scratch.events.len(),
                                };
                            }
                        }
                    }
                    OpClass::General => unreachable!("routed to exec_parcel_general above"),
                }
            }
            match n.ctrl {
                PackedCtrl::Cond { cond, taken, fall } => {
                    debug_assert!(!tags[cond.src.index()], "branch conditions are committed clean");
                    let t = cond.holds(vals[cond.src.index()]);
                    match cond.spec_target {
                        // A Ch. 6 indirect-branch specialization: the
                        // taken side is the true indirect exit, the
                        // fall side continues inline at the target.
                        Some(spec) => {
                            scratch.events.push(ArchEvent::IndirectDir(if t {
                                None
                            } else {
                                Some(spec)
                            }));
                        }
                        None => scratch.events.push(ArchEvent::Dir(t)),
                    }
                    // Resolution completes the branch instruction, but
                    // a CTR-decrementing branch also commits its count
                    // register, which already counted it — dedup
                    // through the same last-base filter as commits.
                    if last_base != cond.origin {
                        last_base = cond.origin;
                        stats.base_instrs += 1;
                    }
                    node = if t { taken } else { fall } as usize;
                }
                PackedCtrl::Next { vliw: next } => {
                    stats.issue_histogram[parcels_this_vliw.min(24)] += 1;
                    if next as usize <= vliw && stats.vliws_executed >= backedge_limit {
                        return GroupExit::Branch {
                            target: packed.anchor(next as usize),
                            via: None,
                            slot: None,
                        };
                    }
                    vliw = next as usize;
                    break;
                }
                PackedCtrl::Leave { target, slot } => {
                    stats.issue_histogram[parcels_this_vliw.min(24)] += 1;
                    return GroupExit::Branch { target, via: None, slot: Some(slot as usize) };
                }
                PackedCtrl::Indirect { src, via } => {
                    stats.issue_histogram[parcels_this_vliw.min(24)] += 1;
                    debug_assert!(!tags[src.index()], "indirect targets are committed clean");
                    return GroupExit::Branch {
                        target: vals[src.index()] & !3,
                        via: Some(via),
                        slot: None,
                    };
                }
                PackedCtrl::Interp { addr } => {
                    stats.issue_histogram[parcels_this_vliw.min(24)] += 1;
                    return GroupExit::Interp { addr };
                }
            }
        }
    }
}

/// The packed engine's full-semantics parcel interpreter: semantics
/// identical to `exec_parcel`, but over the register file's raw
/// arrays and the scratch tables. [`run_group`] routes here whenever a
/// source carries an exception tag (poison propagation / deferred
/// faults, §2.1) or the parcel's [`OpClass`] is
/// [`General`](OpClass::General) (trap checks, load-verify commits);
/// everything hot runs in the class-dispatched arms inlined into the
/// walk loop. The tree engine deliberately keeps the outlined
/// `exec_parcel` so it stays measurable as the pre-packing baseline.
// invariant: the translator only emits `Load` operations with a
// destination register (convert.rs builds them via `.dst(..)`), so the
// `op.dest.expect(..)` calls below cannot fire on translated code.
#[allow(clippy::too_many_arguments, clippy::expect_used)]
fn exec_parcel_general(
    op: &Operation,
    vals: &mut [u32; NUM_REGS],
    tags: &mut [bool; NUM_REGS],
    mem: &mut Memory,
    cache: &mut Hierarchy,
    infinite: bool,
    stats: &mut RunStats,
    scratch: &mut EngineScratch,
    last_base: &mut u32,
) -> Result<(), GroupExit> {
    let nsrc = op.srcs().len();
    let mut src_vals = [0u32; 3];
    let mut tagged: Option<Reg> = None;
    for (i, s) in op.srcs().iter().enumerate() {
        src_vals[i] = vals[s.index()];
        if tags[s.index()] {
            tagged = Some(*s);
        }
    }
    let src_vals = &src_vals[..nsrc];

    // Exception-tag semantics (§2.1): speculative consumers propagate
    // the poison; non-speculative consumers take the deferred fault.
    if let Some(t) = tagged {
        if op.speculative {
            let info = scratch.tag_info[t.index()];
            for d in [op.dest, op.dest2].into_iter().flatten() {
                vals[d.index()] = 0;
                tags[d.index()] = true;
                scratch.tag_info[d.index()] = info;
                scratch.touched.push(d.index() as u8);
            }
            return Ok(());
        }
        let (addr, write, mmio) = scratch.tag_info[t.index()].unwrap_or((0, false, false));
        if mmio {
            // The poison marks a speculative MMIO load, not a fault:
            // bail so the interpreter performs the device read once,
            // in program order, at this commit point.
            return Err(GroupExit::Mmio { addr: op.base_addr });
        }
        return Err(GroupExit::Exception {
            kind: ExcKind::Dsi { addr, write },
            base_addr: op.base_addr,
            fault_idx: scratch.events.len(),
        });
    }

    let count_completion = |stats: &mut RunStats, last_base: &mut u32, addr: u32| {
        if *last_base != addr {
            *last_base = addr;
            stats.base_instrs += 1;
        }
    };

    match op.kind {
        OpKind::Load { width, algebraic } => {
            let ea = effective_address_inline(op, src_vals);
            // Same MMIO discipline as the class-dispatched Load arm.
            if mem.is_mmio_inline(ea) {
                if op.speculative {
                    let d = op.dest.expect("loads have destinations");
                    vals[d.index()] = 0;
                    tags[d.index()] = true;
                    scratch.tag_info[d.index()] = Some((ea, false, true));
                    scratch.touched.push(d.index() as u8);
                    return Ok(());
                }
                return Err(GroupExit::Mmio { addr: op.base_addr });
            }
            match read_mem_fast(mem, ea, width, algebraic) {
                Ok(v) => {
                    if !infinite {
                        let acc = cache.access_data(ea, false);
                        if acc.l0_miss {
                            stats.load_l0_misses += 1;
                        }
                        stats.stall_cycles += u64::from(acc.penalty);
                    }
                    stats.loads += 1;
                    let d = op.dest.expect("loads have destinations");
                    vals[d.index()] = v;
                    tags[d.index()] = false;
                    scratch.tag_info[d.index()] = None;
                    if op.bypassed_store {
                        scratch.pending[d.index()] =
                            Some(PendingLoad { ea, width, algebraic, value: v });
                        scratch.touched.push(d.index() as u8);
                    }
                    if !op.speculative {
                        scratch.events.push(ArchEvent::Def { d1: d, d2: None });
                        count_completion(stats, last_base, op.base_addr);
                    }
                }
                Err(()) => {
                    if op.speculative {
                        // "A speculative operation that causes an error
                        // … just sets the exception tag bit."
                        let d = op.dest.expect("loads have destinations");
                        vals[d.index()] = 0;
                        tags[d.index()] = true;
                        scratch.tag_info[d.index()] = Some((ea, false, false));
                        scratch.touched.push(d.index() as u8);
                    } else {
                        return Err(GroupExit::Exception {
                            kind: ExcKind::Dsi { addr: ea, write: false },
                            base_addr: op.base_addr,
                            fault_idx: scratch.events.len(),
                        });
                    }
                }
            }
        }
        OpKind::Store { width } => {
            let ea = effective_address_inline(op, src_vals);
            if mem.is_mmio_inline(ea) {
                return Err(GroupExit::Mmio { addr: op.base_addr });
            }
            match write_mem_fast(mem, ea, width, src_vals[0]) {
                Ok(()) => {
                    if !infinite {
                        let acc = cache.access_data(ea, true);
                        if acc.l0_miss {
                            stats.store_l0_misses += 1;
                        }
                        stats.stall_cycles += u64::from(acc.penalty);
                    }
                    stats.stores += 1;
                    scratch.events.push(ArchEvent::Store);
                    count_completion(stats, last_base, op.base_addr);
                    if mem.has_code_writes_inline() {
                        stats.code_modifications += 1;
                        return Err(GroupExit::CodeModified { addr: op.base_addr });
                    }
                }
                Err(()) => {
                    return Err(GroupExit::Exception {
                        kind: ExcKind::Dsi { addr: ea, write: true },
                        base_addr: op.base_addr,
                        fault_idx: scratch.events.len(),
                    });
                }
            }
        }
        OpKind::TrapIf { .. } => match eval_inline(op, src_vals) {
            EvalOut::Trap(true) => {
                return Err(GroupExit::Exception {
                    kind: ExcKind::Trap,
                    base_addr: op.base_addr,
                    fault_idx: scratch.events.len(),
                });
            }
            EvalOut::Trap(false) => {
                scratch.events.push(ArchEvent::TrapCheck);
                count_completion(stats, last_base, op.base_addr);
            }
            _ => unreachable!("TrapIf evaluates to Trap"),
        },
        _ => {
            let EvalOut::Value { v, carry } = eval_inline(op, src_vals) else {
                unreachable!("non-memory ops evaluate to values")
            };
            // Load-verify at the commit of a bypassed load (§2.1: "the
            // value must be reloaded and execution re-commenced from
            // the point of the load").
            if op.is_commit && op.bypassed_store {
                let src = op.srcs()[0];
                if let Some(pl) = scratch.pending[src.index()] {
                    if read_mem_fast(mem, pl.ea, pl.width, pl.algebraic) != Ok(pl.value) {
                        stats.alias_failures += 1;
                        return Err(GroupExit::AliasRestart { addr: op.base_addr });
                    }
                }
            }
            if let Some(d) = op.dest {
                vals[d.index()] = v;
                tags[d.index()] = false;
                scratch.tag_info[d.index()] = None;
            }
            if let Some(d2) = op.dest2 {
                vals[d2.index()] = u32::from(carry.unwrap_or(false));
                tags[d2.index()] = false;
                scratch.tag_info[d2.index()] = None;
            }
            if !op.speculative {
                if let Some(d) = op.dest {
                    scratch.events.push(ArchEvent::Def { d1: d, d2: op.dest2 });
                    count_completion(stats, last_base, op.base_addr);
                }
            }
        }
    }
    Ok(())
}

/// Executes one group to its exit by walking the tree representation
/// directly — the pre-packing engine, kept byte-for-byte as the
/// reference the packed walk is verified against (and selectable
/// through `DaisySystemBuilder::packed_execution(false)` so the
/// `engine` bench can measure packed against the old engine in the
/// same binary).
///
/// Deliberately *not* optimized: it re-initialises its exception-tag
/// and pending-load tables on every dispatch, probes the cache
/// hierarchy unconditionally, and calls the outlined `exec_parcel`
/// per parcel, exactly as the engine did before the packed format
/// existed. Only `scratch.events` is used from `scratch` (the event
/// vector was caller-owned in the old engine too).
#[inline]
pub fn run_group_tree(
    code: &GroupCode,
    rf: &mut RegFile,
    mem: &mut Memory,
    cache: &mut Hierarchy,
    stats: &mut RunStats,
    scratch: &mut EngineScratch,
) -> GroupExit {
    run_group_tree_impl::<false>(code, rf, mem, cache, stats, scratch)
}

/// [`run_group_tree`] with guest-PC attribution enabled: records the
/// same absolute packed-node indices as [`run_group_profiled`]
/// (translating tree-local `(vliw, node)` coordinates through
/// [`PackedGroup::roots`]), so attribution computed from the visit
/// trace is engine-independent — the packed≡tree property the profile
/// tests pin.
#[inline]
pub fn run_group_tree_profiled(
    code: &GroupCode,
    rf: &mut RegFile,
    mem: &mut Memory,
    cache: &mut Hierarchy,
    stats: &mut RunStats,
    scratch: &mut EngineScratch,
) -> GroupExit {
    run_group_tree_impl::<true>(code, rf, mem, cache, stats, scratch)
}

fn run_group_tree_impl<const PROFILE: bool>(
    code: &GroupCode,
    rf: &mut RegFile,
    mem: &mut Memory,
    cache: &mut Hierarchy,
    stats: &mut RunStats,
    scratch: &mut EngineScratch,
) -> GroupExit {
    scratch.reset();
    let events = &mut scratch.events;
    let group = &code.group;
    let mut tag_info: [Option<(u32, bool, bool)>; NUM_REGS] = [None; NUM_REGS];
    let mut pending: [Option<PendingLoad>; NUM_REGS] = [None; NUM_REGS];
    let mut last_base = u32::MAX;
    let mut cur = VliwId(0);
    // Same back-edge budget as the packed engine: bounded native-style
    // looping inside a group, then yield at the loop header.
    let backedge_limit = stats.vliws_executed + BACKEDGE_VLIW_BUDGET;

    loop {
        let vliw = group.vliw(cur);
        stats.vliws_executed += 1;
        let iacc = cache.access_instr(code.vliw_addrs[cur.0 as usize]);
        stats.stall_cycles += u64::from(iacc.penalty);

        let mut node = ROOT;
        let mut parcels_this_vliw = 0usize;
        loop {
            if PROFILE {
                scratch.visited.push(code.packed.roots[cur.0 as usize] + node.0);
            }
            let n = &vliw.nodes()[node.0 as usize];
            parcels_this_vliw += n.ops.len();
            for op in &n.ops {
                match exec_parcel(
                    op,
                    rf,
                    mem,
                    cache,
                    stats,
                    events,
                    &mut tag_info,
                    &mut pending,
                    &mut last_base,
                ) {
                    Ok(()) => {}
                    Err(exit) => return exit,
                }
            }
            match &n.kind {
                NodeKind::Open => unreachable!("translator seals every node"),
                NodeKind::Branch { cond, taken, fall } => {
                    debug_assert!(!rf.tag(cond.src), "branch conditions are committed clean");
                    let t = cond.holds(rf.get(cond.src));
                    match cond.spec_target {
                        // A Ch. 6 indirect-branch specialization: the
                        // taken side is the true indirect exit, the
                        // fall side continues inline at the target.
                        Some(spec) => {
                            events.push(ArchEvent::IndirectDir(if t { None } else { Some(spec) }));
                        }
                        None => events.push(ArchEvent::Dir(t)),
                    }
                    // Same dedup as the packed engine's Cond arm: a
                    // CTR-decrementing branch's commit already counted
                    // this instruction.
                    if last_base != cond.origin {
                        last_base = cond.origin;
                        stats.base_instrs += 1;
                    }
                    node = if t { *taken } else { *fall };
                }
                NodeKind::Exit(e) => {
                    stats.issue_histogram[parcels_this_vliw.min(24)] += 1;
                    match e {
                        Exit::Goto(next) => {
                            if next.0 <= cur.0 && stats.vliws_executed >= backedge_limit {
                                return GroupExit::Branch {
                                    target: group.vliw(*next).base_entry,
                                    via: None,
                                    slot: None,
                                };
                            }
                            cur = *next;
                            break;
                        }
                        Exit::Branch { target } => {
                            return GroupExit::Branch {
                                target: *target,
                                via: None,
                                slot: code.exit_slot(*target),
                            }
                        }
                        Exit::Indirect { src, via } => {
                            debug_assert!(!rf.tag(*src), "indirect targets are committed clean");
                            return GroupExit::Branch {
                                target: rf.get(*src) & !3,
                                via: Some(*via),
                                slot: None,
                            };
                        }
                        Exit::Interp { addr } => return GroupExit::Interp { addr: *addr },
                    }
                }
            }
        }
    }
}

// invariant: as in `exec_parcel_general`, translated `Load` operations
// always carry a destination register.
#[allow(clippy::too_many_arguments, clippy::expect_used)]
fn exec_parcel(
    op: &Operation,
    rf: &mut RegFile,
    mem: &mut Memory,
    cache: &mut Hierarchy,
    stats: &mut RunStats,
    events: &mut Vec<ArchEvent>,
    tag_info: &mut [Option<(u32, bool, bool)>; NUM_REGS],
    pending: &mut [Option<PendingLoad>; NUM_REGS],
    last_base: &mut u32,
) -> Result<(), GroupExit> {
    let nsrc = op.srcs().len();
    let mut vals = [0u32; 3];
    let mut tagged: Option<Reg> = None;
    for (i, s) in op.srcs().iter().enumerate() {
        vals[i] = rf.get(*s);
        if rf.tag(*s) {
            tagged = Some(*s);
        }
    }
    let vals = &vals[..nsrc];

    // Exception-tag semantics (§2.1): speculative consumers propagate
    // the poison; non-speculative consumers take the deferred fault.
    if let Some(t) = tagged {
        if op.speculative {
            let info = tag_info[t.index()];
            for d in [op.dest, op.dest2].into_iter().flatten() {
                rf.set(d, 0);
                rf.set_tag(d, true);
                tag_info[d.index()] = info;
            }
            return Ok(());
        }
        let (addr, write, mmio) = tag_info[t.index()].unwrap_or((0, false, false));
        if mmio {
            // Speculative MMIO load: bail at the commit, not a DSI.
            return Err(GroupExit::Mmio { addr: op.base_addr });
        }
        return Err(GroupExit::Exception {
            kind: ExcKind::Dsi { addr, write },
            base_addr: op.base_addr,
            fault_idx: events.len(),
        });
    }

    let count_completion = |stats: &mut RunStats, last_base: &mut u32, addr: u32| {
        if *last_base != addr {
            *last_base = addr;
            stats.base_instrs += 1;
        }
    };

    match op.kind {
        OpKind::Load { width, algebraic } => {
            let ea = effective_address(op, vals);
            // Same MMIO discipline as the packed engine: never touch
            // the device from translated code.
            if mem.is_mmio_inline(ea) {
                if op.speculative {
                    let d = op.dest.expect("loads have destinations");
                    rf.set(d, 0);
                    rf.set_tag(d, true);
                    tag_info[d.index()] = Some((ea, false, true));
                    return Ok(());
                }
                return Err(GroupExit::Mmio { addr: op.base_addr });
            }
            match read_mem(mem, ea, width, algebraic) {
                Ok(v) => {
                    let acc = cache.access_data(ea, false);
                    stats.loads += 1;
                    if acc.l0_miss {
                        stats.load_l0_misses += 1;
                    }
                    stats.stall_cycles += u64::from(acc.penalty);
                    let d = op.dest.expect("loads have destinations");
                    rf.set(d, v);
                    tag_info[d.index()] = None;
                    if op.bypassed_store {
                        pending[d.index()] = Some(PendingLoad { ea, width, algebraic, value: v });
                    }
                    if !op.speculative {
                        events.push(ArchEvent::Def { d1: d, d2: None });
                        count_completion(stats, last_base, op.base_addr);
                    }
                }
                Err(()) => {
                    if op.speculative {
                        // "A speculative operation that causes an error
                        // … just sets the exception tag bit."
                        let d = op.dest.expect("loads have destinations");
                        rf.set(d, 0);
                        rf.set_tag(d, true);
                        tag_info[d.index()] = Some((ea, false, false));
                    } else {
                        return Err(GroupExit::Exception {
                            kind: ExcKind::Dsi { addr: ea, write: false },
                            base_addr: op.base_addr,
                            fault_idx: events.len(),
                        });
                    }
                }
            }
        }
        OpKind::Store { width } => {
            let ea = effective_address(op, vals);
            if mem.is_mmio_inline(ea) {
                return Err(GroupExit::Mmio { addr: op.base_addr });
            }
            match write_mem(mem, ea, width, vals[0]) {
                Ok(()) => {
                    let acc = cache.access_data(ea, true);
                    stats.stores += 1;
                    if acc.l0_miss {
                        stats.store_l0_misses += 1;
                    }
                    stats.stall_cycles += u64::from(acc.penalty);
                    events.push(ArchEvent::Store);
                    count_completion(stats, last_base, op.base_addr);
                    if mem.has_code_writes() {
                        stats.code_modifications += 1;
                        return Err(GroupExit::CodeModified { addr: op.base_addr });
                    }
                }
                Err(()) => {
                    return Err(GroupExit::Exception {
                        kind: ExcKind::Dsi { addr: ea, write: true },
                        base_addr: op.base_addr,
                        fault_idx: events.len(),
                    });
                }
            }
        }
        OpKind::TrapIf { .. } => match eval(op, vals) {
            EvalOut::Trap(true) => {
                return Err(GroupExit::Exception {
                    kind: ExcKind::Trap,
                    base_addr: op.base_addr,
                    fault_idx: events.len(),
                });
            }
            EvalOut::Trap(false) => {
                events.push(ArchEvent::TrapCheck);
                count_completion(stats, last_base, op.base_addr);
            }
            _ => unreachable!("TrapIf evaluates to Trap"),
        },
        _ => {
            let EvalOut::Value { v, carry } = eval(op, vals) else {
                unreachable!("non-memory ops evaluate to values")
            };
            // Load-verify at the commit of a bypassed load (§2.1: "the
            // value must be reloaded and execution re-commenced from
            // the point of the load").
            if op.is_commit && op.bypassed_store {
                let src = op.srcs()[0];
                if let Some(pl) = pending[src.index()] {
                    if read_mem(mem, pl.ea, pl.width, pl.algebraic) != Ok(pl.value) {
                        stats.alias_failures += 1;
                        return Err(GroupExit::AliasRestart { addr: op.base_addr });
                    }
                }
            }
            if let Some(d) = op.dest {
                rf.set(d, v);
                tag_info[d.index()] = None;
            }
            if let Some(d2) = op.dest2 {
                rf.set(d2, u32::from(carry.unwrap_or(false)));
                tag_info[d2.index()] = None;
            }
            if !op.speculative {
                if let Some(d) = op.dest {
                    events.push(ArchEvent::Def { d1: d, d2: op.dest2 });
                    count_completion(stats, last_base, op.base_addr);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{translate_group, TranslatorConfig};
    use daisy_isa::GuestCpu as _;
    use daisy_ppc::asm::Asm;
    use daisy_ppc::interp::Cpu;
    use daisy_ppc::reg::{CrField, Gpr};

    fn setup(build: impl FnOnce(&mut Asm)) -> (GroupCode, Memory) {
        let mut a = Asm::new(0x1000);
        build(&mut a);
        let prog = a.finish().unwrap();
        let mut mem = Memory::new(0x40000);
        prog.load_into(&mut mem).unwrap();
        let cfg = TranslatorConfig::default();
        let (group, _) = translate_group::<daisy_ppc::PpcIsa>(&cfg, &mem, prog.entry);
        let n = group.len();
        let code = GroupCode::new(group, (0..n as u32).map(|i| 0x8000_0000 + i * 64).collect());
        (code, mem)
    }

    fn run(code: &GroupCode, mem: &mut Memory, rf: &mut RegFile) -> (GroupExit, RunStats) {
        let mut cache = Hierarchy::infinite();
        let mut stats = RunStats::default();
        let mut scratch = EngineScratch::new();
        let exit = run_group(code, rf, mem, &mut cache, &mut stats, &mut scratch);
        (exit, stats)
    }

    #[test]
    fn executes_straight_line_arithmetic() {
        let (code, mut mem) = setup(|a| {
            a.add(Gpr(3), Gpr(1), Gpr(2));
            a.add(Gpr(4), Gpr(3), Gpr(3));
            a.sc();
        });
        let mut rf = RegFile::new();
        rf.set(Reg::gpr(Gpr(1)), 4);
        rf.set(Reg::gpr(Gpr(2)), 6);
        let (exit, _) = run(&code, &mut mem, &mut rf);
        assert_eq!(exit, GroupExit::Interp { addr: 0x1008 });
        assert_eq!(rf.get(Reg::gpr(Gpr(3))), 10);
        assert_eq!(rf.get(Reg::gpr(Gpr(4))), 20);
    }

    #[test]
    fn tree_branch_selects_path() {
        let (code, mut mem) = setup(|a| {
            a.cmpwi(CrField(0), Gpr(3), 0);
            a.beq(CrField(0), "zero");
            a.li(Gpr(5), 1);
            a.sc();
            a.label("zero");
            a.li(Gpr(5), 2);
            a.sc();
        });
        let mut rf = RegFile::new();
        rf.set(Reg::gpr(Gpr(3)), 0);
        let (_, _) = run(&code, &mut mem, &mut rf);
        assert_eq!(rf.get(Reg::gpr(Gpr(5))), 2);

        let mut rf = RegFile::new();
        rf.set(Reg::gpr(Gpr(3)), 7);
        let (_, _) = run(&code, &mut mem, &mut rf);
        assert_eq!(rf.get(Reg::gpr(Gpr(5))), 1);
    }

    #[test]
    fn speculative_load_fault_is_deferred_until_commit() {
        // The load is moved above the guarding branch: executed
        // speculatively it must not fault when r9 is a bad pointer and
        // the branch skips it.
        let (code, mut mem) = setup(|a| {
            a.cmpwi(CrField(0), Gpr(3), 0);
            a.beq(CrField(0), "skip");
            a.lwz(Gpr(5), 0, Gpr(9));
            a.label("skip");
            a.li(Gpr(6), 9);
            a.sc();
        });
        let mut rf = RegFile::new();
        rf.set(Reg::gpr(Gpr(3)), 0); // take the skip
        rf.set(Reg::gpr(Gpr(9)), 0x00F0_0000); // invalid address
        let (exit, _) = run(&code, &mut mem, &mut rf);
        assert!(
            matches!(exit, GroupExit::Interp { .. }),
            "skipped faulting load must not raise: {exit:?}"
        );
        assert_eq!(rf.get(Reg::gpr(Gpr(6))), 9);

        // Fall through: the poisoned value is consumed at commit.
        let mut rf = RegFile::new();
        rf.set(Reg::gpr(Gpr(3)), 1);
        rf.set(Reg::gpr(Gpr(9)), 0x00F0_0000);
        let (exit, _) = run(&code, &mut mem, &mut rf);
        match exit {
            GroupExit::Exception {
                kind: ExcKind::Dsi { addr, write: false }, base_addr, ..
            } => {
                assert_eq!(addr, 0x00F0_0000);
                assert_eq!(base_addr, 0x1008);
            }
            other => panic!("expected deferred DSI, got {other:?}"),
        }
    }

    #[test]
    fn alias_restart_on_bypassed_load() {
        // Store and load overlap at runtime (same address via different
        // registers); the hoisted load must be caught at commit. The
        // store's value arrives late so the load truly bypasses it.
        let (code, mut mem) = setup(|a| {
            a.add(Gpr(10), Gpr(8), Gpr(9));
            a.add(Gpr(11), Gpr(10), Gpr(10));
            a.stw(Gpr(11), 0, Gpr(1));
            a.lwz(Gpr(4), 0, Gpr(2));
            a.add(Gpr(5), Gpr(4), Gpr(4));
            a.sc();
        });
        let mut rf = RegFile::new();
        rf.set(Reg::gpr(Gpr(1)), 0x9000);
        rf.set(Reg::gpr(Gpr(2)), 0x9000); // alias!
        rf.set(Reg::gpr(Gpr(8)), 0x55);
        let (exit, stats) = run(&code, &mut mem, &mut rf);
        assert_eq!(exit, GroupExit::AliasRestart { addr: 0x100C });
        assert_eq!(stats.alias_failures, 1);

        // Disjoint addresses execute cleanly.
        let mut rf = RegFile::new();
        rf.set(Reg::gpr(Gpr(1)), 0x9000);
        rf.set(Reg::gpr(Gpr(2)), 0x9100);
        mem.write_u32(0x9100, 5).unwrap();
        let (exit, stats) = run(&code, &mut mem, &mut rf);
        assert!(matches!(exit, GroupExit::Interp { .. }));
        assert_eq!(stats.alias_failures, 0);
        assert_eq!(rf.get(Reg::gpr(Gpr(5))), 10);
    }

    #[test]
    fn self_modifying_store_reports_code_modification() {
        let (code, mut mem) = setup(|a| {
            a.stw(Gpr(3), 0, Gpr(1));
            a.sc();
        });
        mem.set_translated_bit(0x2000);
        let mut rf = RegFile::new();
        rf.set(Reg::gpr(Gpr(1)), 0x2004);
        let (exit, stats) = run(&code, &mut mem, &mut rf);
        assert_eq!(exit, GroupExit::CodeModified { addr: 0x1000 });
        assert_eq!(stats.code_modifications, 1);
    }

    #[test]
    fn matches_interpreter_on_mixed_code() {
        let build = |a: &mut Asm| {
            a.li(Gpr(1), 0x4000 >> 2);
            a.slwi(Gpr(1), Gpr(1), 2);
            a.li(Gpr(3), 17);
            a.stw(Gpr(3), 0, Gpr(1));
            a.lwz(Gpr(4), 0, Gpr(1));
            a.addic(Gpr(5), Gpr(4), 0x7FFF);
            a.adde(Gpr(6), Gpr(5), Gpr(4));
            a.cmpwi(CrField(0), Gpr(6), 0);
            a.bgt(CrField(0), "pos");
            a.li(Gpr(7), 0);
            a.sc();
            a.label("pos");
            a.li(Gpr(7), 1);
            a.sc();
        };
        let (code, mut mem) = setup(build);
        let mut rf = RegFile::new();
        let (exit, _) = run(&code, &mut mem, &mut rf);

        // Reference run.
        let mut a = Asm::new(0x1000);
        build(&mut a);
        let prog = a.finish().unwrap();
        let mut mem2 = Memory::new(0x40000);
        prog.load_into(&mut mem2).unwrap();
        let mut cpu = Cpu::new(prog.entry);
        cpu.run(&mut mem2, 100).unwrap();

        let mut cpu_daisy = Cpu::new(0);
        cpu_daisy.write_back(&rf);
        for i in 0..32 {
            assert_eq!(cpu_daisy.gpr[i], cpu.gpr[i], "r{i} mismatch");
        }
        assert_eq!(cpu_daisy.cr, cpu.cr);
        // The Interp exit lands on the sc the interpreter stopped after.
        assert!(matches!(exit, GroupExit::Interp { addr } if addr + 4 == cpu.pc));
    }
}
