/root/repo/target/release/deps/profile-3573a98b291d0a4d.d: crates/bench/src/bin/profile.rs

/root/repo/target/release/deps/profile-3573a98b291d0a4d: crates/bench/src/bin/profile.rs

crates/bench/src/bin/profile.rs:
