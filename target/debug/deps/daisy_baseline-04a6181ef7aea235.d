/root/repo/target/debug/deps/daisy_baseline-04a6181ef7aea235.d: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

/root/repo/target/debug/deps/daisy_baseline-04a6181ef7aea235: crates/baseline/src/lib.rs crates/baseline/src/ppc604e.rs crates/baseline/src/profile.rs crates/baseline/src/trad.rs

crates/baseline/src/lib.rs:
crates/baseline/src/ppc604e.rs:
crates/baseline/src/profile.rs:
crates/baseline/src/trad.rs:
