/root/repo/target/debug/deps/daisy_bench-6ec677d260906a5e.d: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libdaisy_bench-6ec677d260906a5e.rlib: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libdaisy_bench-6ec677d260906a5e.rmeta: crates/bench/src/lib.rs crates/bench/src/runner.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/runner.rs:
crates/bench/src/tables.rs:
